(* End-to-end tests of the resilience layer: Guard budgets and
   deadlines, Engine.eval_robust fallback chains, parallel shard
   recovery, TSQL ON ERROR policies, and storage fault injection with
   checksum detection (satellite of the paper's Section 5.3 guidance:
   the recommended k-ordered tree is only safe when k is guessed
   right, so mis-guesses must degrade the plan, not the answer). *)

open Temporal
open Relation
open Tempagg

let iv = Interval.of_ints

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let render_degradations ds =
  String.concat "; " (List.map Engine.degradation_to_string ds)

let check_mentions what ds needle =
  let rendered = render_degradations ds in
  if not (contains rendered needle) then
    Alcotest.fail
      (Printf.sprintf "%s: degradations %S lack %S" what rendered needle)

(* ------------------------------------------------------------------ *)
(* Guard                                                               *)
(* ------------------------------------------------------------------ *)

let test_guard_validation () =
  let rejects f =
    match f () with _ -> false | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "negative budget" true
    (rejects (fun () -> Guard.create ~memory_budget:(-1) ()));
  Alcotest.(check bool) "negative deadline" true
    (rejects (fun () -> Guard.create ~deadline_ms:(-0.5) ()))

let test_guard_unlimited () =
  let g = Guard.create () in
  Alcotest.(check bool) "unlimited" true (Guard.unlimited g);
  for _ = 1 to 10_000 do
    Guard.check g
  done;
  Alcotest.(check bool) "no hook" true (Guard.hook g = None);
  Alcotest.(check bool) "budget makes it limited" false
    (Guard.unlimited (Guard.create ~memory_budget:1 ()))

let test_guard_deadline_trips () =
  let g = Guard.create ~deadline_ms:1. () in
  Unix.sleepf 0.005;
  Alcotest.(check bool) "raises" true
    (match Guard.check g with
    | () -> false
    | exception Guard.Deadline_exceeded { deadline_ms; elapsed_ms } ->
        deadline_ms = 1. && elapsed_ms >= 1.)

let test_guard_budget_trips () =
  let g = Guard.create ~memory_budget:64 () in
  let inst = Instrument.create () in
  (* 16 bytes/node *)
  Guard.attach g inst;
  for _ = 1 to 4 do
    Instrument.alloc inst
  done;
  (* 64 bytes live: exactly at the budget, still fine. *)
  Alcotest.(check bool) "fifth alloc trips" true
    (match Instrument.alloc inst with
    | () -> false
    | exception Guard.Budget_exceeded { budget_bytes; used_bytes } ->
        budget_bytes = 64 && used_bytes = 80)

let test_guard_wrap_seq () =
  let g = Guard.create ~deadline_ms:1. () in
  let pulled = ref 0 in
  let seq =
    Guard.wrap_seq g
      (Seq.map
         (fun i ->
           incr pulled;
           i)
         (Seq.ints 0))
  in
  Unix.sleepf 0.005;
  Alcotest.(check bool) "pull raises" true
    (match Seq.iter ignore seq with
    | () -> false
    | exception Guard.Deadline_exceeded _ -> true);
  (* The guard checks as each element is handed out, so the consumer
     never observes one: at most the first was pulled underneath. *)
  Alcotest.(check bool) "no element reaches the consumer" true (!pulled <= 1);
  (* No deadline: wrap_seq is the identity. *)
  let unlimited = Guard.create ~memory_budget:10 () in
  let s = Seq.ints 0 in
  Alcotest.(check bool) "identity when no deadline" true
    (Guard.wrap_seq unlimited s == s)

let test_guard_describe () =
  let some = function Some _ -> true | None -> false in
  Alcotest.(check bool) "budget described" true
    (some
       (Guard.describe
          (Guard.Budget_exceeded { budget_bytes = 1; used_bytes = 2 })));
  Alcotest.(check bool) "deadline described" true
    (some
       (Guard.describe
          (Guard.Deadline_exceeded { deadline_ms = 1.; elapsed_ms = 2. })));
  Alcotest.(check bool) "other exn ignored" true
    (Guard.describe Not_found = None)

(* The split cap is observable through [Budget_exceeded.budget_bytes]:
   trip a shard guard and read back the cap it was enforcing. *)
let shard_cap ~budget ~ways =
  let g = Guard.split (Guard.create ~memory_budget:budget ()) ways in
  let inst = Instrument.create ~node_bytes:1 () in
  Guard.attach g inst;
  let rec alloc_until_trip () =
    match Instrument.alloc inst with
    | () -> alloc_until_trip ()
    | exception Guard.Budget_exceeded { budget_bytes; _ } -> budget_bytes
  in
  alloc_until_trip ()

let test_guard_split_one_way_preserves () =
  Alcotest.(check int) "ways=1 keeps the budget" 10 (shard_cap ~budget:10 ~ways:1)

let test_guard_split_zero_budget () =
  (* A zero budget splits to zero: the very first allocation trips. *)
  Alcotest.(check int) "zero stays zero" 0 (shard_cap ~budget:0 ~ways:4);
  (* Splitting finer than the budget rounds down to zero too. *)
  Alcotest.(check int) "7/8 rounds to zero" 0 (shard_cap ~budget:7 ~ways:8)

let test_guard_split_rounds_down () =
  (* 10 bytes over 3 shards: 3 each, and 3 shards * 3 bytes = 9 <= 10 —
     concurrent shards can never overrun the parent budget in sum. *)
  let ways = 3 and budget = 10 in
  let caps = List.init ways (fun _ -> shard_cap ~budget ~ways) in
  List.iter (fun cap -> Alcotest.(check int) "floor(10/3)" 3 cap) caps;
  Alcotest.(check bool) "shards sum within parent" true
    (List.fold_left ( + ) 0 caps <= budget)

let test_guard_split_shares_deadline_clock () =
  let parent = Guard.create ~deadline_ms:1. () in
  Unix.sleepf 0.005;
  (* The shard's clock starts at the parent's start, not at the split:
     elapsed time before the split already counts. *)
  let shard = Guard.split parent 2 in
  Alcotest.(check bool) "shard inherits elapsed time" true
    (match Guard.check shard with
    | () -> false
    | exception Guard.Deadline_exceeded { elapsed_ms; _ } -> elapsed_ms >= 1.)

(* ------------------------------------------------------------------ *)
(* Engine.of_string: round trips and validation                        *)
(* ------------------------------------------------------------------ *)

let test_algorithm_name_roundtrip () =
  List.iter
    (fun a ->
      match Engine.of_string (Engine.name a) with
      | Ok a' ->
          Alcotest.(check string)
            (Engine.name a ^ " roundtrips")
            (Engine.name a) (Engine.name a')
      | Error msg -> Alcotest.fail (Engine.name a ^ " -> " ^ msg))
    Engine.all;
  (* Deeper shapes than the representatives in [all]. *)
  List.iter
    (fun a ->
      match Engine.of_string (Engine.name a) with
      | Ok a' -> Alcotest.(check bool) "structural" true (a = a')
      | Error msg -> Alcotest.fail (Engine.name a ^ " -> " ^ msg))
    [
      Engine.Korder_tree { k = 4096 };
      Engine.Parallel { domains = 7; inner = Engine.Korder_tree { k = 3 } };
      Engine.Parallel
        {
          domains = 2;
          inner = Engine.Parallel { domains = 2; inner = Engine.Two_scan };
        };
    ]

let test_algorithm_of_string_rejects () =
  let expect_error s fragment =
    match Engine.of_string s with
    | Ok _ -> Alcotest.fail ("accepted " ^ s)
    | Error msg ->
        if not (contains msg fragment) then
          Alcotest.fail (Printf.sprintf "error %S lacks %S" msg fragment)
  in
  expect_error "ktree(-1)" "non-negative";
  expect_error "parallel(0)" "at least 1";
  expect_error "parallel(0,sweep)" "at least 1";
  expect_error "parallel(-3,sweep)" "at least 1";
  expect_error "frob" "unknown algorithm"

(* ------------------------------------------------------------------ *)
(* eval_robust: fallback chains                                        *)
(* ------------------------------------------------------------------ *)

(* Time-ordered except the straggler at the end.  The k-ordered tree's
   frontier only advances once 2k+2 tuples have passed (the paper's
   finalization window), so the violator must arrive after that: under
   k=1 the frontier has reached 20 when (5,15) shows up — a violation —
   while under k=2 the window never fills and the run succeeds.  One
   doubling recovers; the aggregation tree is never needed. *)
let unsorted_data =
  [
    (iv 10 18, 5); (iv 20 28, 2); (iv 30 34, 1);
    (iv 40 48, 7); (iv 50 60, 3); (iv 5 15, 9);
  ]

let useq () = List.to_seq unsorted_data

let check_timeline what expected actual =
  Alcotest.(check bool) what true (Timeline.equal Int.equal expected actual)

let test_ktree_fallback_matches_reference () =
  let expected = Engine.eval Engine.Aggregation_tree Monoid.count (useq ()) in
  match
    Engine.eval_robust (Engine.Korder_tree { k = 1 }) Monoid.count (useq ())
  with
  | Error e -> Alcotest.fail (Engine.error_to_string e)
  | Ok (tl, ds) ->
      check_timeline "same timeline as aggregation tree" expected tl;
      Alcotest.(check bool) "degradation reported" true (ds <> []);
      check_mentions "ktree retry" ds "ktree"

let test_ktree_fail_policy_is_terminal () =
  match
    Engine.eval_robust ~on_error:Engine.Fail (Engine.Korder_tree { k = 1 })
      Monoid.count (useq ())
  with
  | Ok _ -> Alcotest.fail "expected Not_k_ordered"
  | Error (Engine.Not_k_ordered _) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Engine.error_to_string e)

(* A displacement larger than the retry cap concedes all the way to the
   aggregation tree.  The violation must fire even at the capped
   k = 4096, whose finalization window holds 2k+2 = 8194 tuples — with
   fewer, the frontier never advances and any k "succeeds" — so the
   straggler needs more than that many predecessors. *)
let test_ktree_fallback_concedes_to_agg_tree () =
  let n = 9000 in
  let data =
    List.init n (fun i -> (iv i (i + 3), 1)) @ [ (iv 0 2, 1) ]
  in
  let seq () = List.to_seq data in
  let expected = Engine.eval Engine.Sweep Monoid.count (seq ()) in
  match
    Engine.eval_robust (Engine.Korder_tree { k = 1 }) Monoid.count (seq ())
  with
  | Error e -> Alcotest.fail (Engine.error_to_string e)
  | Ok (tl, ds) ->
      check_timeline "correct despite hopeless k" expected tl;
      check_mentions "terminal fallback" ds "aggregation-tree"

let test_skip_policy_drops_and_counts () =
  (* The straggler is the only tuple tripping ktree(1): skip drops
     exactly it and aggregates the rest. *)
  let kept = List.filteri (fun i _ -> i < 5) unsorted_data in
  let expected =
    Engine.eval Engine.Aggregation_tree Monoid.count (List.to_seq kept)
  in
  match
    Engine.eval_robust ~on_error:Engine.Skip (Engine.Korder_tree { k = 1 })
      Monoid.count (useq ())
  with
  | Error e -> Alcotest.fail (Engine.error_to_string e)
  | Ok (tl, ds) ->
      check_timeline "aggregates the kept tuples" expected tl;
      check_mentions "skip is never silent" ds "skipped 1 misordered"

let test_budget_fallback_to_sweep () =
  (* A staircase of mutually overlapping intervals: nothing finalizes,
     so the balanced tree's 20-byte nodes all stay live while the sweep
     pays only its flat 16-byte event slots.  Measure both, then pick
     the midpoint so the balanced tree must blow the budget and the
     sweep must fit under it. *)
  let n = 2000 in
  let data = List.init n (fun i -> (iv i (i + n), 1)) in
  let seq () = List.to_seq data in
  let _, bal = Engine.eval_with_stats Engine.Balanced_tree Monoid.count (seq ()) in
  let _, sw = Engine.eval_with_stats Engine.Sweep Monoid.count (seq ()) in
  let budget = (bal.Instrument.peak_bytes + sw.Instrument.peak_bytes) / 2 in
  Alcotest.(check bool) "sweep is cheaper here" true
    (sw.Instrument.peak_bytes < budget
    && budget < bal.Instrument.peak_bytes);
  let expected = Engine.eval Engine.Sweep Monoid.count (seq ()) in
  match
    Engine.eval_robust ~memory_budget:budget Engine.Balanced_tree Monoid.count
      (seq ())
  with
  | Error e -> Alcotest.fail (Engine.error_to_string e)
  | Ok (tl, ds) ->
      check_timeline "sweep result" expected tl;
      check_mentions "budget fallback" ds "sweep"

let test_budget_fail_policy_is_terminal () =
  let n = 2000 in
  let data = List.init n (fun i -> (iv (2 * i) ((2 * i) + 1), 1)) in
  match
    Engine.eval_robust ~on_error:Engine.Fail ~memory_budget:256
      Engine.Balanced_tree Monoid.count (List.to_seq data)
  with
  | Ok _ -> Alcotest.fail "expected Budget_exhausted"
  | Error (Engine.Budget_exhausted { budget_bytes; used_bytes }) ->
      Alcotest.(check int) "budget echoed" 256 budget_bytes;
      Alcotest.(check bool) "overshoot reported" true (used_bytes > 256)
  | Error e -> Alcotest.fail ("wrong error: " ^ Engine.error_to_string e)

let test_deadline_always_terminal () =
  (* Enough work that the cooperative checks fire well past an
     already-expired deadline, even under the Fallback policy. *)
  let n = 100_000 in
  let data = List.init n (fun i -> (iv i (i + 3), 1)) in
  match
    Engine.eval_robust ~deadline_ms:0.01 Engine.Sweep Monoid.count
      (List.to_seq data)
  with
  | Ok _ -> Alcotest.fail "expected Deadline_exhausted"
  | Error (Engine.Deadline_exhausted { deadline_ms; elapsed_ms }) ->
      Alcotest.(check bool) "fields populated" true
        (deadline_ms = 0.01 && elapsed_ms >= 0.)
  | Error e -> Alcotest.fail ("wrong error: " ^ Engine.error_to_string e)

let test_clean_run_reports_nothing () =
  let data = List.init 100 (fun i -> (iv i (i + 5), 1)) in
  match
    Engine.eval_robust ~memory_budget:1_000_000 ~deadline_ms:60_000.
      (Engine.Korder_tree { k = 1 })
      Monoid.count (List.to_seq data)
  with
  | Error e -> Alcotest.fail (Engine.error_to_string e)
  | Ok (tl, ds) ->
      let expected =
        Engine.eval Engine.Aggregation_tree Monoid.count (List.to_seq data)
      in
      check_timeline "clean result" expected tl;
      Alcotest.(check int) "no degradations" 0 (List.length ds)

(* Property: whatever the input order, ktree(1) under the fallback
   policy ends up agreeing with the reference evaluation. *)
let robust_ktree_matches_reference =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 0 40)
        (let* s = int_bound 100 in
         let* len = int_range 1 20 in
         let* v = int_range 1 50 in
         return (iv s (s + len), v)))
  in
  QCheck2.Test.make ~name:"eval_robust ktree(1) = reference on any order"
    ~count:200 gen (fun data ->
      let expected = Reference.eval Monoid.count data in
      match
        Engine.eval_robust
          (Engine.Korder_tree { k = 1 })
          Monoid.count (List.to_seq data)
      with
      | Ok (tl, _) -> Timeline.equal Int.equal expected tl
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* eval_robust: parallel shard recovery                                *)
(* ------------------------------------------------------------------ *)

let shard_test_data () =
  (* Sorted everywhere except a swap confined to the second half: with
     contiguous sharding over 2 domains only shard 1 sees a violation. *)
  let data = Array.init 100 (fun i -> (iv i (i + 5), 1)) in
  let tmp = data.(70) in
  data.(70) <- data.(76);
  data.(76) <- tmp;
  data

let test_parallel_shard_recovers_inline () =
  let data = shard_test_data () in
  let alg =
    Engine.Parallel { domains = 2; inner = Engine.Korder_tree { k = 1 } }
  in
  let expected =
    Engine.eval Engine.Aggregation_tree Monoid.count (Array.to_seq data)
  in
  match Engine.eval_robust alg Monoid.count (Array.to_seq data) with
  | Error e -> Alcotest.fail (Engine.error_to_string e)
  | Ok (tl, ds) ->
      check_timeline "join completes" expected tl;
      check_mentions "failed shard named" ds "shard";
      check_mentions "inline re-evaluation named" ds "re-evaluated inline"

let test_parallel_shard_failure_fatal_under_fail () =
  let data = shard_test_data () in
  let alg =
    Engine.Parallel { domains = 2; inner = Engine.Korder_tree { k = 1 } }
  in
  match
    Engine.eval_robust ~on_error:Engine.Fail alg Monoid.count
      (Array.to_seq data)
  with
  | Ok _ -> Alcotest.fail "expected Not_k_ordered"
  | Error (Engine.Not_k_ordered _) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Engine.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Instrument.absorb under concurrent shards                           *)
(* ------------------------------------------------------------------ *)

let absorb_peak_is_sum_of_shard_peaks =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 8)
        (let* allocs = int_bound 50 in
         let* frees = int_bound allocs in
         return (allocs, frees)))
  in
  QCheck2.Test.make ~name:"absorb: parent peak = sum of shard peaks"
    ~count:300 gen (fun shards ->
      let parent = Instrument.create () in
      let snapshots =
        List.map
          (fun (allocs, frees) ->
            let child = Instrument.create () in
            for _ = 1 to allocs do
              Instrument.alloc child
            done;
            Instrument.free_many child frees;
            Instrument.snapshot child)
          shards
      in
      (* All shards ran concurrently: absorb every snapshot before
         releasing any of them, as Parallel.eval does at the join. *)
      List.iter (Instrument.absorb parent) snapshots;
      let sum_peaks =
        List.fold_left
          (fun acc s -> acc + s.Instrument.peak_live)
          0 snapshots
      in
      let peak_ok = Instrument.peak_live parent = sum_peaks in
      Instrument.free_many parent sum_peaks;
      peak_ok
      && Instrument.live parent = 0
      && Instrument.allocated parent
         = List.fold_left (fun acc (a, _) -> acc + a) 0 shards)

(* ------------------------------------------------------------------ *)
(* Span robust evaluation                                              *)
(* ------------------------------------------------------------------ *)

let test_span_robust_fallback () =
  let granule = Granule.make 10 in
  let expected =
    Span.eval ~algorithm:Engine.Aggregation_tree ~granule Monoid.count
      (useq ())
  in
  match
    Span.eval_robust
      ~algorithm:(Engine.Korder_tree { k = 1 })
      ~granule Monoid.count (useq ())
  with
  | Error e -> Alcotest.fail (Engine.error_to_string e)
  | Ok (tl, ds) ->
      check_timeline "span timeline" expected tl;
      check_mentions "span degradations surface" ds "ktree"

(* ------------------------------------------------------------------ *)
(* TSQL: ON ERROR policies end to end                                  *)
(* ------------------------------------------------------------------ *)

let unsorted_catalog () =
  let schema = Schema.of_pairs [ ("salary", Value.Tint) ] in
  let tuples =
    List.map
      (fun (ivl, v) -> Tuple.make [| Value.Int v |] ivl)
      unsorted_data
  in
  Tsql.Catalog.add
    (Tsql.Catalog.with_builtins ())
    "Messy"
    (Trel.create schema tuples)

let test_tsql_on_error_fallback () =
  let cat = unsorted_catalog () in
  let q = "SELECT COUNT(*) FROM Messy USING ktree(1) ON ERROR FALLBACK" in
  match Tsql.Eval.query_robust cat q with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
      Alcotest.(check bool) "degradations reported" true
        (report.Tsql.Eval.degradations <> []);
      let reference =
        match
          Tsql.Eval.query cat
            "SELECT COUNT(*) FROM Messy USING aggregation_tree"
        with
        | Ok rel -> rel
        | Error msg -> Alcotest.fail msg
      in
      Alcotest.(check int) "same row count as aggregation tree"
        (Trel.cardinality reference)
        (Trel.cardinality report.Tsql.Eval.result)

let test_tsql_using_hint_fails_loudly_by_default () =
  let cat = unsorted_catalog () in
  match
    Tsql.Eval.query_robust cat "SELECT COUNT(*) FROM Messy USING ktree(1)"
  with
  | Ok _ -> Alcotest.fail "expected failure: USING defaults to fail"
  | Error msg ->
      Alcotest.(check bool) "structured message" true
        (contains msg "not k-ordered")

let test_tsql_on_error_parse_and_print () =
  (match Tsql.Parser.parse "SELECT COUNT(*) FROM t ON ERROR SKIP" with
  | Error msg -> Alcotest.fail msg
  | Ok q ->
      Alcotest.(check bool) "policy parsed" true
        (q.Tsql.Ast.on_error = Some Tempagg.Engine.Skip);
      Alcotest.(check bool) "policy printed" true
        (contains (Tsql.Ast.to_string q) "ON ERROR SKIP"));
  match Tsql.Parser.parse "SELECT COUNT(*) FROM t ON ERROR NONSENSE" with
  | Ok _ -> Alcotest.fail "accepted bad policy"
  | Error msg -> Alcotest.(check bool) "descriptive" true
        (contains msg "unknown on-error policy")

let test_tsql_deadline_overrides () =
  (* Big enough that the cooperative checks run long past an expired
     deadline; tiny inputs could finish inside the first clock stride. *)
  let schema = Schema.of_pairs [ ("v", Value.Tint) ] in
  let tuples =
    List.init 50_000 (fun i ->
        let s = i * 7919 mod 100_000 in
        Tuple.make [| Value.Int i |] (iv s (s + 50)))
  in
  let cat =
    Tsql.Catalog.add
      (Tsql.Catalog.with_builtins ())
      "Big"
      (Trel.create schema tuples)
  in
  let q = "SELECT COUNT(*) FROM Big USING sweep" in
  match Tsql.Eval.query_robust ~deadline_ms:0.001 cat q with
  | Ok _ -> Alcotest.fail "expected deadline error"
  | Error msg ->
      Alcotest.(check bool) "deadline rendered" true
        (contains msg "deadline exceeded")

let test_tsql_explain_shows_policy () =
  let cat = unsorted_catalog () in
  match
    Tsql.Eval.explain cat
      "SELECT COUNT(*) FROM Messy USING ktree(1) ON ERROR FALLBACK"
  with
  | Error msg -> Alcotest.fail msg
  | Ok text ->
      Alcotest.(check bool) "policy visible" true
        (contains text "on error: fallback")

(* ------------------------------------------------------------------ *)
(* Storage: fault injection, checksums, retry, skip-and-count          *)
(* ------------------------------------------------------------------ *)

let schema =
  Schema.of_pairs [ ("name", Value.Tstring); ("salary", Value.Tint) ]

let sample_tuples n =
  List.init n (fun i ->
      Tuple.make
        [| Value.Str (Printf.sprintf "t%04d" i); Value.Int i |]
        (iv i (i + 10)))

let with_temp f =
  let path = Filename.temp_file "tempagg_robust" ".heap" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let write_sample ?page_size ?slot_bytes path n =
  let stats = Storage.Io_stats.create () in
  Storage.Heap_file.write_relation ?page_size ?slot_bytes ~stats path
    (Trel.create schema (sample_tuples n))

let test_fault_spec_roundtrip () =
  match Storage.Fault.of_string "transient=0.5,torn=0.25,bitflip=0.1,seed=7" with
  | Error e -> Alcotest.fail e
  | Ok f -> (
      Alcotest.(check int) "seed" 7 (Storage.Fault.seed f);
      match Storage.Fault.of_string (Storage.Fault.to_string f) with
      | Error e -> Alcotest.fail e
      | Ok f' ->
          Alcotest.(check string) "canonical form stable"
            (Storage.Fault.to_string f)
            (Storage.Fault.to_string f'))

let test_fault_spec_rejects () =
  let bad s =
    match Storage.Fault.of_string s with
    | Ok _ -> Alcotest.fail ("accepted " ^ s)
    | Error _ -> ()
  in
  bad "torn=2.0";
  bad "torn=-0.1";
  bad "bogus=1";
  bad "torn";
  bad "seed=x";
  match Storage.Fault.of_string "" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("empty spec rejected: " ^ e)

let test_fault_deterministic () =
  let f = Storage.Fault.create ~seed:7 ~torn:0.5 () in
  let g = Storage.Fault.create ~seed:7 ~torn:0.5 () in
  for page = 0 to 63 do
    Alcotest.(check bool)
      (Printf.sprintf "page %d same draw" page)
      (Storage.Fault.would_corrupt f ~path:"x" ~page)
      (Storage.Fault.would_corrupt g ~path:"x" ~page)
  done

let test_crc32_check_value () =
  (* The CRC-32/IEEE check value for "123456789". *)
  let b = Bytes.of_string "123456789" in
  Alcotest.(check int32) "check value" 0xCBF43926l
    (Storage.Codec.crc32 b ~pos:0 ~len:9)

let test_heap_v2_format () =
  with_temp (fun path ->
      write_sample path 200;
      let stats = Storage.Io_stats.create () in
      let r = Storage.Heap_file.open_reader ~stats path in
      Alcotest.(check int) "version 2" 2
        (Storage.Heap_file.format_version r);
      Alcotest.(check int) "all tuples back" 200
        (List.length (List.of_seq (Storage.Heap_file.scan r)));
      Storage.Heap_file.close_reader r)

let test_transient_faults_retried () =
  with_temp (fun path ->
      write_sample path 300;
      let stats = Storage.Io_stats.create () in
      (* Rate 1.0: every data page fails its first read attempt and the
         bounded retry always recovers — whatever the seed, so the CI
         seed matrix (TEMPAGG_FAULT_SEED) exercises the same path. *)
      let fault = Storage.Fault.create ~transient:1.0 () in
      let rel =
        Storage.Heap_file.read_relation ~fault ~stats path
      in
      Alcotest.(check int) "nothing lost" 300 (Trel.cardinality rel);
      let data_pages =
        let r = Storage.Heap_file.open_reader ~stats path in
        let p = Storage.Heap_file.data_pages r in
        Storage.Heap_file.close_reader r;
        p
      in
      Alcotest.(check int) "one retry per data page" data_pages
        (Storage.Io_stats.retries stats);
      Alcotest.(check int) "no page flagged corrupt" 0
        (Storage.Io_stats.corrupt_pages stats))

let test_corruption_detected_by_checksum () =
  with_temp (fun path ->
      write_sample path 300;
      let stats = Storage.Io_stats.create () in
      let fault = Storage.Fault.create ~bitflip:1.0 () in
      let r = Storage.Heap_file.open_reader ~fault ~stats path in
      Alcotest.(check bool) "scan raises Corrupt_page" true
        (match List.of_seq (Storage.Heap_file.scan r) with
        | _ -> false
        | exception Storage.Heap_file.Corrupt_page { page; _ } -> page = 0);
      Storage.Heap_file.close_reader r;
      Alcotest.(check bool) "corruption counted" true
        (Storage.Io_stats.corrupt_pages stats > 0))

let test_torn_pages_skipped_and_counted () =
  with_temp (fun path ->
      write_sample path 300;
      let stats = Storage.Io_stats.create () in
      let fault = Storage.Fault.create ~torn:1.0 () in
      let r = Storage.Heap_file.open_reader ~fault ~stats path in
      let pages = Storage.Heap_file.data_pages r in
      let kept =
        List.of_seq (Storage.Heap_file.scan ~on_corrupt:`Skip r)
      in
      Alcotest.(check int) "every page torn, nothing decodes" 0
        (List.length kept);
      Alcotest.(check int) "every loss counted" pages
        (Storage.Io_stats.corrupt_pages stats);
      Storage.Heap_file.close_reader r)

let test_partial_corruption_skip_keeps_clean_pages () =
  with_temp (fun path ->
      (* Small pages so the file spans many pages and a partial fault
         rate leaves both clean and torn ones. *)
      write_sample ~page_size:512 ~slot_bytes:64 path 300;
      let stats = Storage.Io_stats.create () in
      let fault = Storage.Fault.create ~torn:0.4 () in
      let r = Storage.Heap_file.open_reader ~fault ~stats path in
      let pages = Storage.Heap_file.data_pages r in
      let slots = (512 - 4 - 4) / 64 in
      (* The injector is a pure function of (seed, path, page): compute
         exactly which pages it will tear and hence how many tuples the
         skipping scan must still deliver. *)
      let expected_kept = ref 0 and expected_torn = ref 0 in
      for p = 0 to pages - 1 do
        let tuples_on_page = min slots (300 - (p * slots)) in
        if Storage.Fault.would_corrupt fault ~path ~page:p then
          incr expected_torn
        else expected_kept := !expected_kept + tuples_on_page
      done;
      let kept =
        List.of_seq (Storage.Heap_file.scan ~on_corrupt:`Skip r)
      in
      Alcotest.(check int) "clean pages all delivered" !expected_kept
        (List.length kept);
      Alcotest.(check int) "torn pages all counted" !expected_torn
        (Storage.Io_stats.corrupt_pages stats);
      Storage.Heap_file.close_reader r)

let quick name f = Alcotest.test_case name `Quick f
let prop t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "robust"
    [
      ( "guard",
        [
          quick "validation" test_guard_validation;
          quick "unlimited is free" test_guard_unlimited;
          quick "deadline trips" test_guard_deadline_trips;
          quick "budget trips at the crossing alloc" test_guard_budget_trips;
          quick "wrap_seq checks before each pull" test_guard_wrap_seq;
          quick "describe" test_guard_describe;
          quick "split ways=1 preserves budget" test_guard_split_one_way_preserves;
          quick "split of zero budget" test_guard_split_zero_budget;
          quick "split rounds down, never oversubscribes"
            test_guard_split_rounds_down;
          quick "split shares the deadline clock"
            test_guard_split_shares_deadline_clock;
        ] );
      ( "algorithm-names",
        [
          quick "name/of_string round trip" test_algorithm_name_roundtrip;
          quick "descriptive rejections" test_algorithm_of_string_rejects;
        ] );
      ( "fallback-chain",
        [
          quick "ktree(1) on unsorted input = aggregation tree"
            test_ktree_fallback_matches_reference;
          quick "fail policy is terminal" test_ktree_fail_policy_is_terminal;
          quick "hopeless k concedes to aggregation tree"
            test_ktree_fallback_concedes_to_agg_tree;
          quick "skip drops and counts" test_skip_policy_drops_and_counts;
          quick "blown budget falls back to sweep"
            test_budget_fallback_to_sweep;
          quick "budget under fail policy" test_budget_fail_policy_is_terminal;
          quick "deadline is always terminal" test_deadline_always_terminal;
          quick "clean run reports nothing" test_clean_run_reports_nothing;
          prop robust_ktree_matches_reference;
        ] );
      ( "parallel-recovery",
        [
          quick "failed shard re-evaluated inline"
            test_parallel_shard_recovers_inline;
          quick "shard failure fatal under fail policy"
            test_parallel_shard_failure_fatal_under_fail;
          prop absorb_peak_is_sum_of_shard_peaks;
        ] );
      ("span", [ quick "span eval_robust falls back" test_span_robust_fallback ]);
      ( "tsql",
        [
          quick "ON ERROR FALLBACK recovers" test_tsql_on_error_fallback;
          quick "USING hint fails loudly by default"
            test_tsql_using_hint_fails_loudly_by_default;
          quick "ON ERROR parse and print" test_tsql_on_error_parse_and_print;
          quick "deadline override" test_tsql_deadline_overrides;
          quick "explain shows the policy" test_tsql_explain_shows_policy;
        ] );
      ( "storage-faults",
        [
          quick "spec round trip" test_fault_spec_roundtrip;
          quick "spec validation" test_fault_spec_rejects;
          quick "draws are deterministic" test_fault_deterministic;
          quick "crc32 check value" test_crc32_check_value;
          quick "heap files are version 2" test_heap_v2_format;
          quick "transient faults retried" test_transient_faults_retried;
          quick "corruption detected by checksum"
            test_corruption_detected_by_checksum;
          quick "torn pages skipped and counted"
            test_torn_pages_skipped_and_counted;
          quick "partial corruption keeps clean pages"
            test_partial_corruption_skip_keeps_clean_pages;
        ] );
    ]
