(* Smoke test for the benchmark harness: the sweep section must run end
   to end at a small size, and --csv must create nested output
   directories (Sys.mkdir is not recursive; save_csv's mkdir_p is). *)

(* The bench binary sits next to this test in the build tree:
   _build/default/{test/test_bench_smoke.exe, bench/main.exe}. *)
let bench =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bench" "main.exe")

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let run args =
  let out = Filename.temp_file "tempagg_bench" ".out" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists out then Sys.remove out)
    (fun () ->
      let cmd =
        Printf.sprintf "%s %s > %s 2>&1" bench
          (String.concat " " (List.map Filename.quote args))
          out
      in
      let code = Sys.command cmd in
      (code, In_channel.with_open_text out In_channel.input_all))

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let test_sweep_section () =
  let dir = Filename.temp_file "tempagg_bench" "" in
  Sys.remove dir;
  (* Two levels below a directory that does not exist yet: the exact
     shape that crashed the old non-recursive save_csv. *)
  let csv_dir = Filename.concat (Filename.concat dir "nested") "sub" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      let code, out =
        run
          [
            "--sections"; "sweep"; "--max-size"; "512"; "--repeats"; "1";
            "--csv"; csv_dir;
          ]
      in
      Alcotest.(check int) "exit 0" 0 code;
      Alcotest.(check bool) "prints the sweep banner" true
        (contains out "sweep:");
      Alcotest.(check bool) "prints domain scaling" true
        (contains out "domain scaling at n = 512");
      let csv = Filename.concat csv_dir "sweep.csv" in
      Alcotest.(check bool) "csv written under nested dirs" true
        (Sys.file_exists csv);
      let contents = In_channel.with_open_text csv In_channel.input_all in
      Alcotest.(check bool) "csv mentions the sweep series" true
        (contains contents "sweep (count)"))

let test_live_section_json () =
  let dir = Filename.temp_file "tempagg_bench" "" in
  Sys.remove dir;
  (* Nested path again: write_json must create the directories. *)
  let json = Filename.concat (Filename.concat dir "out") "BENCH_results.json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      let code, out = run [ "--smoke"; "--sections"; "live"; "--json"; json ] in
      Alcotest.(check int) "exit 0" 0 code;
      Alcotest.(check bool) "prints the live banner" true
        (contains out "live:");
      Alcotest.(check bool) "prints the headline ratio" true
        (contains out "headline (1% writes");
      Alcotest.(check bool) "json written" true (Sys.file_exists json);
      let contents = In_channel.with_open_text json In_channel.input_all in
      (* Superficial JSON shape: run-identity metadata followed by an
         array of flat records carrying the fields the CI artifact
         consumers key on. *)
      Alcotest.(check bool) "object with meta and results" true
        (String.length contents > 2
        && contents.[0] = '{'
        && String.ends_with ~suffix:"]}\n" contents);
      List.iter
        (fun needle ->
          Alcotest.(check bool) needle true (contains contents needle))
        [
          "\"meta\": {";
          "\"git_sha\": \"";
          "\"timestamp\": \"";
          "\"smoke\": true";
          "\"results\": [";
          "\"section\": \"live\"";
          "\"algorithm\": \"incremental\"";
          "\"algorithm\": \"reeval\"";
          "\"median_ns\":";
          "\"n\":";
        ];
      (* A results file must compare cleanly against itself: every point
         matches, zero regressions, exit 0. *)
      let code, out =
        run [ "--compare-only"; "--json"; json; "--compare"; json ]
      in
      Alcotest.(check int) "self-compare exit 0" 0 code;
      Alcotest.(check bool) "self-compare finds the points" true
        (contains out "comparable point(s)");
      Alcotest.(check bool) "self-compare is clean" true
        (contains out "0 regression(s)"))

(* The obs section must defend its <3% disarmed-tracing bar and write
   the two observability artifacts next to the --json output: a Chrome
   trace that names the shard timelines and a Prometheus exposition. *)
let test_obs_section_artifacts () =
  let dir = Filename.temp_file "tempagg_bench" "" in
  Sys.remove dir;
  let json = Filename.concat dir "BENCH_results.json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      let code, out = run [ "--smoke"; "--sections"; "obs"; "--json"; json ] in
      Alcotest.(check int) "exit 0" 0 code;
      Alcotest.(check bool) "prints the obs banner" true (contains out "obs:");
      Alcotest.(check bool) "prints the tracing-off bar" true
        (contains out "worst tracing-off overhead:");
      Alcotest.(check bool) "prints the recorder bar" true
        (contains out "worst always-on-recorder overhead:");
      let trace = Filename.concat dir "BENCH_trace.json" in
      Alcotest.(check bool) "trace written" true (Sys.file_exists trace);
      let trace_text = In_channel.with_open_text trace In_channel.input_all in
      List.iter
        (fun needle ->
          Alcotest.(check bool) needle true (contains trace_text needle))
        [ "{\"traceEvents\":["; "\"ph\":\"X\""; "\"name\":\"shard\"";
          "thread_name" ];
      let metrics = Filename.concat dir "BENCH_metrics.txt" in
      Alcotest.(check bool) "metrics written" true (Sys.file_exists metrics);
      let metrics_text =
        In_channel.with_open_text metrics In_channel.input_all
      in
      List.iter
        (fun needle ->
          Alcotest.(check bool) needle true (contains metrics_text needle))
        [ "# TYPE tempagg_profile_peak_bytes gauge"; "tempagg_profile_attempts" ])

let () =
  Alcotest.run "bench-smoke"
    [
      ( "bench",
        [
          Alcotest.test_case "sweep section + nested csv" `Quick
            test_sweep_section;
          Alcotest.test_case "live section + json records" `Quick
            test_live_section_json;
          Alcotest.test_case "obs section + artifacts" `Slow
            test_obs_section_artifacts;
        ] );
    ]
