(* Tests for the storage substrate: fixed-width tuple codec, heap files
   with page-level I/O accounting, and the external merge sort behind the
   paper's "sort first, then ktree(1)" strategy. *)

open Temporal
open Relation
open Storage

let iv = Interval.of_ints

let schema =
  Schema.of_pairs
    [ ("name", Value.Tstring); ("salary", Value.Tint);
      ("rate", Value.Tfloat) ]

let tuple ?(name = "alice") ?(salary = Value.Int 42_000)
    ?(rate = Value.Float 1.5) valid =
  Tuple.make [| Value.Str name; salary; rate |] valid

let temp_path () = Filename.temp_file "tempagg_test" ".heap"

let with_temp f =
  let path = temp_path () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let roundtrip t =
  let slot = Codec.default_slot_bytes in
  Codec.decode schema (Codec.encode ~slot_bytes:slot t) ~pos:0

let test_codec_roundtrip_basic () =
  let t = tuple (iv 5 99) in
  Alcotest.(check bool) "equal" true (Tuple.equal t (roundtrip t))

let test_codec_roundtrip_unbounded () =
  let t = tuple (Interval.from (Chronon.of_int 18)) in
  let back = roundtrip t in
  Alcotest.(check bool) "forever preserved" true
    (Chronon.equal (Tuple.stop back) Chronon.forever)

let test_codec_roundtrip_nulls () =
  let t =
    Tuple.make [| Value.Null; Value.Null; Value.Null |] (iv 0 0)
  in
  Alcotest.(check bool) "nulls" true (Tuple.equal t (roundtrip t))

let test_codec_roundtrip_negative_and_float () =
  let t =
    Tuple.make
      [| Value.Str ""; Value.Int (-123456); Value.Float (-0.25) |]
      (iv 1 2)
  in
  Alcotest.(check bool) "values" true (Tuple.equal t (roundtrip t))

let test_codec_oversize_rejected () =
  let t = tuple ~name:(String.make 200 'x') (iv 0 1) in
  Alcotest.(check bool) "raises" true
    (match Codec.encode ~slot_bytes:128 t with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_codec_encoded_size () =
  (* 16 (valid) + (3+5) str + 9 int + 9 float *)
  Alcotest.(check int) "size" (16 + 8 + 9 + 9)
    (Codec.encoded_size (tuple (iv 0 1)))

let test_codec_wrong_tag_rejected () =
  let buf = Codec.encode ~slot_bytes:128 (tuple (iv 0 1)) in
  (* First column is a string; decode against an int schema. *)
  let bad_schema = Schema.of_pairs [ ("x", Value.Tint) ] in
  Alcotest.(check bool) "raises" true
    (match Codec.decode bad_schema buf ~pos:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Heap file                                                           *)
(* ------------------------------------------------------------------ *)

let sample_tuples n =
  List.init n (fun i -> tuple ~name:(Printf.sprintf "t%04d" i) (iv i (i + 10)))

let test_heap_roundtrip () =
  with_temp (fun path ->
      let stats = Io_stats.create () in
      let rel = Trel.create schema (sample_tuples 500) in
      Heap_file.write_relation ~stats path rel;
      let back = Heap_file.read_relation ~stats path in
      Alcotest.(check int) "cardinality" 500 (Trel.cardinality back);
      List.iter2
        (fun a b -> Alcotest.(check bool) "tuple" true (Tuple.equal a b))
        (Trel.tuples rel) (Trel.tuples back))

let test_heap_preserves_physical_order () =
  with_temp (fun path ->
      let stats = Io_stats.create () in
      let tuples =
        [ tuple (iv 50 60); tuple (iv 1 2); tuple (iv 30 90) ]
      in
      Heap_file.write_relation ~stats path (Trel.create schema tuples);
      let back = Heap_file.read_relation ~stats path in
      Alcotest.(check bool) "order kept" true
        (List.for_all2 Tuple.equal tuples (Trel.tuples back)))

let test_heap_page_accounting () =
  with_temp (fun path ->
      let stats = Io_stats.create () in
      let n = 500 in
      Heap_file.write_relation ~stats path (Trel.create schema (sample_tuples n));
      let written = Io_stats.pages_written stats in
      (* 63 slots per 8K page at 128B -> 8 data pages + 1 header. *)
      let slots = (8192 - 4) / 128 in
      Alcotest.(check int) "writes" (((n + slots - 1) / slots) + 1) written;
      Io_stats.reset stats;
      let r = Heap_file.open_reader ~stats path in
      Alcotest.(check int) "header read" 1 (Io_stats.pages_read stats);
      Alcotest.(check int) "cardinality" n (Heap_file.cardinality r);
      Alcotest.(check int) "data pages" ((n + slots - 1) / slots)
        (Heap_file.data_pages r);
      ignore (List.of_seq (Heap_file.scan r));
      Alcotest.(check int) "scan reads every data page"
        (1 + Heap_file.data_pages r)
        (Io_stats.pages_read stats);
      Heap_file.close_reader r)

let test_heap_empty_relation () =
  with_temp (fun path ->
      let stats = Io_stats.create () in
      Heap_file.write_relation ~stats path (Trel.create schema []);
      let back = Heap_file.read_relation ~stats path in
      Alcotest.(check int) "empty" 0 (Trel.cardinality back))

let test_heap_custom_page_and_slot () =
  with_temp (fun path ->
      let stats = Io_stats.create () in
      Heap_file.write_relation ~page_size:512 ~slot_bytes:64 ~stats path
        (Trel.create schema (sample_tuples 40));
      let r = Heap_file.open_reader ~stats path in
      Alcotest.(check int) "page size from header" 512 (Heap_file.page_size r);
      Alcotest.(check int) "slot size from header" 64 (Heap_file.slot_bytes r);
      Alcotest.(check int) "tuples" 40 (List.length (List.of_seq (Heap_file.scan r)));
      Heap_file.close_reader r)

let test_heap_bad_magic () =
  with_temp (fun path ->
      Out_channel.with_open_bin path (fun oc ->
          output_string oc (String.make 9000 'x'));
      let stats = Io_stats.create () in
      Alcotest.(check bool) "rejected" true
        (match Heap_file.open_reader ~stats path with
        | _ -> false
        | exception Invalid_argument _ -> true))

let test_heap_writer_after_close_rejected () =
  with_temp (fun path ->
      let stats = Io_stats.create () in
      let w = Heap_file.create ~stats path schema in
      Heap_file.close_writer w;
      Alcotest.(check bool) "rejected" true
        (match Heap_file.append w (tuple (iv 0 1)) with
        | _ -> false
        | exception Invalid_argument _ -> true))

(* ------------------------------------------------------------------ *)
(* External sort                                                       *)
(* ------------------------------------------------------------------ *)

let shuffled_tuples n seed =
  let prng = Workload.Prng.create ~seed in
  Array.to_list
    (Ordering.Perturb.shuffle
       ~rand:(Workload.Prng.int_bounded prng)
       (Array.of_list (sample_tuples n)))

let sort_file ?memory_tuples ?fan_in n seed =
  let src = temp_path () and dst = temp_path () in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ src; dst ])
    (fun () ->
      let stats = Io_stats.create () in
      Heap_file.write_relation ~stats src
        (Trel.create schema (shuffled_tuples n seed));
      Io_stats.reset stats;
      External_sort.sort ?memory_tuples ?fan_in ~stats ~src ~dst ();
      let sorted = Heap_file.read_relation ~stats dst in
      (sorted, Io_stats.snapshot stats))

let test_sort_produces_time_order () =
  let sorted, _ = sort_file ~memory_tuples:64 1000 7 in
  Alcotest.(check bool) "ordered" true (Trel.is_time_ordered sorted);
  Alcotest.(check int) "all tuples kept" 1000 (Trel.cardinality sorted)

let test_sort_single_run () =
  (* Everything fits in memory: one run, trivially correct. *)
  let sorted, _ = sort_file ~memory_tuples:10_000 300 1 in
  Alcotest.(check bool) "ordered" true (Trel.is_time_ordered sorted)

let test_sort_multi_pass () =
  (* 1000 tuples, 20-tuple runs, fan-in 3 -> several merge levels. *)
  let sorted, _ = sort_file ~memory_tuples:20 ~fan_in:3 1000 11 in
  Alcotest.(check bool) "ordered" true (Trel.is_time_ordered sorted);
  Alcotest.(check int) "all tuples kept" 1000 (Trel.cardinality sorted)

let test_sort_stability () =
  (* Duplicate valid times: payloads must keep input order. *)
  let src = temp_path () and dst = temp_path () in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ src; dst ])
    (fun () ->
      let stats = Io_stats.create () in
      let tuples =
        List.init 100 (fun i ->
            tuple ~name:(Printf.sprintf "n%03d" i) (iv (i mod 3) 100))
      in
      Heap_file.write_relation ~stats src (Trel.create schema tuples);
      External_sort.sort ~memory_tuples:16 ~fan_in:2 ~stats ~src ~dst ();
      let sorted = Heap_file.read_relation ~stats dst in
      let names_of start =
        List.filter_map
          (fun t ->
            if Chronon.to_int (Tuple.start t) = start then
              match Tuple.value t 0 with
              | Value.Str s -> Some s
              | _ -> None
            else None)
          (Trel.tuples sorted)
      in
      List.iter
        (fun start ->
          let names = names_of start in
          Alcotest.(check (list string))
            (Printf.sprintf "start %d stable" start)
            (List.sort String.compare names)
            names)
        [ 0; 1; 2 ])

let test_sort_empty () =
  let sorted, _ = sort_file ~memory_tuples:16 1 3 in
  Alcotest.(check int) "one tuple" 1 (Trel.cardinality sorted)

let test_sort_io_matches_estimate () =
  let n = 1000 and memory_tuples = 64 and fan_in = 4 in
  let _, io = sort_file ~memory_tuples ~fan_in n 13 in
  let slots = (8192 - 4) / 128 in
  let pages = (n + slots - 1) / slots in
  let estimate = External_sort.estimated_page_io ~n ~pages ~memory_tuples ~fan_in in
  let total = io.Io_stats.pages_read + io.Io_stats.pages_written in
  (* Headers and partial run pages add overhead; the estimate must be the
     right order of magnitude (within 3x). *)
  Alcotest.(check bool)
    (Printf.sprintf "estimate %d vs measured %d" estimate total)
    true
    (total >= estimate && total <= 3 * estimate)

let test_sort_knob_validation () =
  let stats = Io_stats.create () in
  Alcotest.(check bool) "memory_tuples" true
    (match External_sort.sort ~memory_tuples:0 ~stats ~src:"x" ~dst:"y" () with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "fan_in" true
    (match External_sort.sort ~fan_in:1 ~stats ~src:"x" ~dst:"y" () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_run_count () =
  Alcotest.(check int) "exact" 4 (External_sort.run_count ~n:100 ~memory_tuples:25);
  Alcotest.(check int) "ragged" 5 (External_sort.run_count ~n:101 ~memory_tuples:25)

(* Sorted heap file feeds the paper's recommended strategy. *)
let test_sort_then_ktree_pipeline () =
  let src = temp_path () and dst = temp_path () in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ src; dst ])
    (fun () ->
      let stats = Io_stats.create () in
      let spec = Workload.Spec.make ~n:800 ~lifespan:20_000 ~seed:5 () in
      let rel = Workload.Generate.relation spec in
      Heap_file.write_relation ~stats src rel;
      External_sort.sort ~memory_tuples:100 ~stats ~src ~dst ();
      let r = Heap_file.open_reader ~stats dst in
      let timeline =
        Tempagg.Korder_tree.eval ~k:1 Tempagg.Monoid.count
          (Seq.map (fun t -> (Tuple.valid t, ())) (Heap_file.scan r))
      in
      Heap_file.close_reader r;
      let expected =
        Tempagg.Agg_tree.eval Tempagg.Monoid.count
          (Seq.map (fun t -> (t, ())) (Trel.intervals rel))
      in
      Alcotest.(check bool) "pipeline result correct" true
        (Timeline.equal Int.equal timeline expected))


(* ------------------------------------------------------------------ *)
(* Buffer pool                                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_basic () =
  let pool = Buffer_pool.create ~capacity:2 in
  Buffer_pool.insert pool ("f", 0) (Bytes.of_string "page0");
  Alcotest.(check (option string)) "hit" (Some "page0")
    (Option.map Bytes.to_string (Buffer_pool.find pool ("f", 0)));
  Alcotest.(check bool) "miss" true (Buffer_pool.find pool ("f", 1) = None);
  Alcotest.(check int) "hits" 1 (Buffer_pool.hits pool);
  Alcotest.(check int) "misses" 1 (Buffer_pool.misses pool)

let test_pool_lru_eviction () =
  let pool = Buffer_pool.create ~capacity:2 in
  Buffer_pool.insert pool ("f", 0) (Bytes.of_string "a");
  Buffer_pool.insert pool ("f", 1) (Bytes.of_string "b");
  ignore (Buffer_pool.find pool ("f", 0));
  (* page 1 is now LRU *)
  Buffer_pool.insert pool ("f", 2) (Bytes.of_string "c");
  Alcotest.(check bool) "page0 kept" true (Buffer_pool.find pool ("f", 0) <> None);
  Alcotest.(check bool) "page1 evicted" true (Buffer_pool.find pool ("f", 1) = None);
  Alcotest.(check int) "length" 2 (Buffer_pool.length pool)

let test_pool_copies_pages () =
  let pool = Buffer_pool.create ~capacity:2 in
  let page = Bytes.of_string "mutate-me" in
  Buffer_pool.insert pool ("f", 0) page;
  Bytes.set page 0 'X';
  Alcotest.(check (option string)) "unaffected" (Some "mutate-me")
    (Option.map Bytes.to_string (Buffer_pool.find pool ("f", 0)))

let test_pool_invalidate_file () =
  let pool = Buffer_pool.create ~capacity:4 in
  Buffer_pool.insert pool ("f", 0) (Bytes.of_string "a");
  Buffer_pool.insert pool ("g", 0) (Bytes.of_string "b");
  Buffer_pool.invalidate_file pool "f";
  Alcotest.(check bool) "f gone" true (Buffer_pool.find pool ("f", 0) = None);
  Alcotest.(check bool) "g kept" true (Buffer_pool.find pool ("g", 0) <> None)

let test_pool_invalidate_multiple_pages () =
  let pool = Buffer_pool.create ~capacity:8 in
  for p = 0 to 3 do
    Buffer_pool.insert pool ("f", p) (Bytes.of_string (string_of_int p))
  done;
  Buffer_pool.insert pool ("g", 0) (Bytes.of_string "keep");
  Buffer_pool.invalidate_file pool "f";
  Alcotest.(check int) "only g's page remains" 1 (Buffer_pool.length pool);
  for p = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "f page %d gone" p)
      true
      (Buffer_pool.find pool ("f", p) = None)
  done;
  Alcotest.(check bool) "g untouched" true
    (Buffer_pool.find pool ("g", 0) <> None)

let test_pool_invalidate_missing_file_is_noop () =
  let pool = Buffer_pool.create ~capacity:2 in
  Buffer_pool.insert pool ("f", 0) (Bytes.of_string "a");
  Buffer_pool.invalidate_file pool "nonexistent";
  Alcotest.(check int) "nothing dropped" 1 (Buffer_pool.length pool);
  let empty = Buffer_pool.create ~capacity:2 in
  Buffer_pool.invalidate_file empty "f";
  Alcotest.(check int) "empty pool unchanged" 0 (Buffer_pool.length empty)

let test_pool_reinsert_after_invalidate () =
  let pool = Buffer_pool.create ~capacity:2 in
  Buffer_pool.insert pool ("f", 0) (Bytes.of_string "stale");
  Buffer_pool.invalidate_file pool "f";
  Buffer_pool.insert pool ("f", 0) (Bytes.of_string "fresh");
  Alcotest.(check (option string)) "fresh copy served" (Some "fresh")
    (Option.map Bytes.to_string (Buffer_pool.find pool ("f", 0)));
  (* Eviction order must be consistent after the invalidation: the pool
     holds one page, inserting two more evicts only the oldest. *)
  Buffer_pool.insert pool ("g", 0) (Bytes.of_string "b");
  Buffer_pool.insert pool ("g", 1) (Bytes.of_string "c");
  Alcotest.(check int) "capacity respected" 2 (Buffer_pool.length pool);
  Alcotest.(check bool) "oldest evicted" true
    (Buffer_pool.find pool ("f", 0) = None)

let test_pool_validation () =
  Alcotest.(check bool) "capacity" true
    (match Buffer_pool.create ~capacity:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* Tuma's two scans: with a pool big enough for the relation, the second
   scan costs no disk reads. *)
let test_pool_second_scan_free () =
  with_temp (fun path ->
      let stats = Io_stats.create () in
      Heap_file.write_relation ~stats path
        (Trel.create schema (sample_tuples 300));
      Io_stats.reset stats;
      let pool = Buffer_pool.create ~capacity:64 in
      let r = Heap_file.open_reader ~stats path in
      let pages = Heap_file.data_pages r in
      ignore (List.of_seq (Heap_file.scan ~pool r));
      let after_first = Io_stats.pages_read stats in
      Alcotest.(check int) "first scan reads from disk" (1 + pages) after_first;
      ignore (List.of_seq (Heap_file.scan ~pool r));
      Alcotest.(check int) "second scan free" after_first
        (Io_stats.pages_read stats);
      Heap_file.close_reader r)

let test_pool_too_small_to_help () =
  with_temp (fun path ->
      let stats = Io_stats.create () in
      Heap_file.write_relation ~stats path
        (Trel.create schema (sample_tuples 300));
      Io_stats.reset stats;
      (* One-page pool on a multi-page sequential scan: every page of the
         second scan misses again. *)
      let pool = Buffer_pool.create ~capacity:1 in
      let r = Heap_file.open_reader ~stats path in
      let pages = Heap_file.data_pages r in
      Alcotest.(check bool) "multi-page file" true (pages > 1);
      ignore (List.of_seq (Heap_file.scan ~pool r));
      let after_first = Io_stats.pages_read stats in
      ignore (List.of_seq (Heap_file.scan ~pool r));
      (* Sequential re-scan with a one-page pool: page 0 evicts the only
         cached page before it is ever reused — every page misses again. *)
      Alcotest.(check int) "second scan re-reads everything"
        (after_first + pages)
        (Io_stats.pages_read stats);
      Heap_file.close_reader r)

let quick name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "storage"
    [
      ( "codec",
        [
          quick "roundtrip" test_codec_roundtrip_basic;
          quick "unbounded stop" test_codec_roundtrip_unbounded;
          quick "nulls" test_codec_roundtrip_nulls;
          quick "negative ints, floats, empty strings"
            test_codec_roundtrip_negative_and_float;
          quick "oversize rejected" test_codec_oversize_rejected;
          quick "encoded size" test_codec_encoded_size;
          quick "wrong tag rejected" test_codec_wrong_tag_rejected;
        ] );
      ( "heap-file",
        [
          quick "roundtrip" test_heap_roundtrip;
          quick "preserves physical order" test_heap_preserves_physical_order;
          quick "page accounting" test_heap_page_accounting;
          quick "empty relation" test_heap_empty_relation;
          quick "custom page and slot sizes" test_heap_custom_page_and_slot;
          quick "bad magic rejected" test_heap_bad_magic;
          quick "append after close rejected"
            test_heap_writer_after_close_rejected;
        ] );
      ( "buffer-pool",
        [
          quick "find/insert" test_pool_basic;
          quick "LRU eviction" test_pool_lru_eviction;
          quick "pages are copied" test_pool_copies_pages;
          quick "invalidate file" test_pool_invalidate_file;
          quick "invalidate drops every page of the file"
            test_pool_invalidate_multiple_pages;
          quick "invalidate unknown file is a no-op"
            test_pool_invalidate_missing_file_is_noop;
          quick "reinsert after invalidate" test_pool_reinsert_after_invalidate;
          quick "validation" test_pool_validation;
          quick "second scan free with big pool" test_pool_second_scan_free;
          quick "tiny pool does not help" test_pool_too_small_to_help;
        ] );
      ( "external-sort",
        [
          quick "produces time order" test_sort_produces_time_order;
          quick "single run" test_sort_single_run;
          quick "multi-pass merge" test_sort_multi_pass;
          quick "stability" test_sort_stability;
          quick "tiny input" test_sort_empty;
          quick "io matches estimate" test_sort_io_matches_estimate;
          quick "knob validation" test_sort_knob_validation;
          quick "run count" test_run_count;
          quick "sort + ktree(1) pipeline" test_sort_then_ktree_pipeline;
        ] );
    ]
