(* End-to-end tests of the tempagg command-line tool, driving the built
   binary as a user would. *)

(* The CLI binary sits next to this test in the build tree:
   _build/default/{test/test_cli.exe, bin/tempagg_cli.exe}.  Resolve it
   from the executable's own path so the tests work from any cwd. *)
let cli =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "tempagg_cli.exe")

let temp_out () = Filename.temp_file "tempagg_cli" ".out"

(* Runs the CLI with the given arguments, returning (exit code, stdout). *)
let run args =
  let out = temp_out () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists out then Sys.remove out)
    (fun () ->
      let cmd =
        Printf.sprintf "%s %s > %s 2>&1" cli
          (String.concat " " (List.map Filename.quote args))
          out
      in
      let code = Sys.command cmd in
      (code, In_channel.with_open_text out In_channel.input_all))

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let check_contains output fragment =
  if not (contains output fragment) then
    Alcotest.fail (Printf.sprintf "output %S lacks %S" output fragment)

let with_tempdir f =
  let dir = Filename.temp_file "tempagg_cli" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun x -> Sys.remove (Filename.concat dir x)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let test_query_employed () =
  let code, out = run [ "query"; "SELECT COUNT(Name) FROM Employed" ] in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains out "| [18,20] |" |> ignore;
  check_contains out "3";
  check_contains out "[22,oo]"

let test_query_error_reported () =
  let code, out = run [ "query"; "SELECT COUNT(*) FROM Nowhere" ] in
  Alcotest.(check bool) "nonzero exit" true (code <> 0);
  check_contains out "unknown relation"

let test_explain () =
  let code, out = run [ "explain"; "SELECT COUNT(*) FROM Employed" ] in
  Alcotest.(check int) "exit 0" 0 code;
  (* COUNT is invertible, so the optimizer picks the delta-sweep. *)
  check_contains out "sweep";
  (* MIN is not, so it falls back to the aggregation tree; --domains
     wraps the choice in the parallel divide-and-conquer. *)
  let code, out =
    run
      [ "explain"; "--domains"; "2"; "SELECT MIN(Salary) FROM Employed" ]
  in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains out "parallel(2,aggregation-tree)"

let test_query_algorithm_override () =
  let code, out =
    run
      [
        "query"; "--algorithm"; "parallel(4,sweep)";
        "SELECT COUNT(Name) FROM Employed";
      ]
  in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains out "| [18,20] |";
  check_contains out "[22,oo]"

let test_generate_metrics_roundtrip () =
  with_tempdir (fun dir ->
      let csv = Filename.concat dir "rel.csv" in
      let code, _ =
        run
          [ "generate"; "--tuples"; "200"; "--order"; "k-ordered"; "-k"; "7";
            "--seed"; "3"; "-o"; csv ]
      in
      Alcotest.(check int) "generate ok" 0 code;
      let code, out = run [ "metrics"; csv; "-k"; "7" ] in
      Alcotest.(check int) "metrics ok" 0 code;
      check_contains out "tuples:            200";
      check_contains out "k-orderedness:     7")

let test_convert_extsort_query_pipeline () =
  with_tempdir (fun dir ->
      let csv = Filename.concat dir "rel.csv" in
      let heap = Filename.concat dir "rel.heap" in
      let sorted = Filename.concat dir "rel.sorted.heap" in
      let code, _ =
        run [ "generate"; "--tuples"; "300"; "--seed"; "4"; "-o"; csv ]
      in
      Alcotest.(check int) "generate" 0 code;
      let code, out = run [ "convert"; csv; heap ] in
      Alcotest.(check int) "convert" 0 code;
      check_contains out "wrote 300 tuples";
      let code, _ = run [ "extsort"; heap; sorted; "--memory-tuples"; "50" ] in
      Alcotest.(check int) "extsort" 0 code;
      let code, out = run [ "metrics"; sorted ] in
      Alcotest.(check int) "metrics" 0 code;
      check_contains out "time-ordered:      true";
      let code, out =
        run
          [ "query"; "-r"; "jobs=" ^ sorted;
            "SELECT COUNT(*) FROM jobs DURING [0,100000]" ]
      in
      Alcotest.(check int) "query over heap" 0 code;
      check_contains out "count(*)")

let test_sort_csv () =
  with_tempdir (fun dir ->
      let csv = Filename.concat dir "rel.csv" in
      let out_csv = Filename.concat dir "sorted.csv" in
      let code, _ =
        run [ "generate"; "--tuples"; "100"; "--seed"; "5"; "-o"; csv ]
      in
      Alcotest.(check int) "generate" 0 code;
      let code, _ = run [ "sort"; csv; "-o"; out_csv ] in
      Alcotest.(check int) "sort" 0 code;
      let code, out = run [ "metrics"; out_csv ] in
      Alcotest.(check int) "metrics" 0 code;
      check_contains out "k-orderedness:     0")

let test_bad_subcommand () =
  let code, _ = run [ "frobnicate" ] in
  Alcotest.(check bool) "nonzero exit" true (code <> 0)

let test_csv_error_carries_position () =
  with_tempdir (fun dir ->
      let csv = Filename.concat dir "bad.csv" in
      Out_channel.with_open_text csv (fun oc ->
          output_string oc "name:string,start,stop\nalice,1,2\nbob,oops,9\n");
      let code, out = run [ "metrics"; csv ] in
      Alcotest.(check bool) "nonzero exit" true (code <> 0);
      check_contains out "line 3 (row 2)")

(* Writes a relation whose physical order defeats ktree(1) so the
   recovery flags have something to recover from. *)
let unsorted_csv dir =
  let csv = Filename.concat dir "rel.csv" in
  let code, _ =
    run
      [ "generate"; "--tuples"; "300"; "--order"; "k-ordered"; "-k"; "40";
        "--seed"; "9"; "-o"; csv ]
  in
  Alcotest.(check int) "generate" 0 code;
  csv

let test_on_error_fallback_flag () =
  with_tempdir (fun dir ->
      let csv = unsorted_csv dir in
      let q = "SELECT COUNT(*) FROM jobs" in
      (* Without a policy the hinted algorithm fails loudly... *)
      let code, out =
        run [ "query"; "-r"; "jobs=" ^ csv; "--algorithm"; "ktree(1)"; q ]
      in
      Alcotest.(check bool) "hint fails" true (code <> 0);
      check_contains out "not k-ordered";
      (* ...and with --on-error fallback the query completes, reporting
         every degradation on stderr. *)
      let code, out =
        run
          [ "query"; "-r"; "jobs=" ^ csv; "--algorithm"; "ktree(1)";
            "--on-error"; "fallback"; q ]
      in
      Alcotest.(check int) "fallback recovers" 0 code;
      check_contains out "degraded:";
      check_contains out "count(*)")

let test_deadline_flag () =
  with_tempdir (fun dir ->
      let csv = Filename.concat dir "rel.csv" in
      let code, _ =
        run [ "generate"; "--tuples"; "20000"; "--seed"; "6"; "-o"; csv ]
      in
      Alcotest.(check int) "generate" 0 code;
      let code, out =
        run
          [ "query"; "-r"; "jobs=" ^ csv; "--deadline-ms"; "0.001";
            "SELECT COUNT(*) FROM jobs" ]
      in
      Alcotest.(check bool) "deadline trips" true (code <> 0);
      check_contains out "deadline exceeded")

let test_inject_faults_flags () =
  with_tempdir (fun dir ->
      let csv = Filename.concat dir "rel.csv" in
      let heap = Filename.concat dir "rel.heap" in
      let code, _ =
        run [ "generate"; "--tuples"; "300"; "--seed"; "8"; "-o"; csv ]
      in
      Alcotest.(check int) "generate" 0 code;
      let code, _ = run [ "convert"; csv; heap ] in
      Alcotest.(check int) "convert" 0 code;
      let q = "SELECT COUNT(*) FROM jobs" in
      (* Transient faults are retried away without any policy. *)
      let code, out =
        run
          [ "query"; "-r"; "jobs=" ^ heap; "--inject-faults"; "transient=1.0";
            q ]
      in
      Alcotest.(check int) "transient recovered" 0 code;
      check_contains out "transient read fault";
      (* Persistent corruption fails the checksum... *)
      let code, out =
        run [ "query"; "-r"; "jobs=" ^ heap; "--inject-faults"; "torn=1.0"; q ]
      in
      Alcotest.(check bool) "corruption fatal by default" true (code <> 0);
      check_contains out "failed its checksum";
      (* ...unless the policy says to scan around it. *)
      let code, out =
        run
          [ "query"; "-r"; "jobs=" ^ heap; "--inject-faults"; "torn=1.0";
            "--on-error"; "skip"; q ]
      in
      Alcotest.(check int) "skip scans around" 0 code;
      check_contains out "corrupt page";
      (* A malformed spec is rejected up front. *)
      let code, out =
        run [ "query"; "-r"; "jobs=" ^ heap; "--inject-faults"; "torn=9"; q ]
      in
      Alcotest.(check bool) "bad spec rejected" true (code <> 0);
      check_contains out "torn")

let test_serve_script () =
  with_tempdir (fun dir ->
      let script = Filename.concat dir "ops.tsql" in
      Out_channel.with_open_text script (fun oc ->
          output_string oc
            "-- live view over the paper's Employed relation\n\
             CREATE VIEW hc AS SELECT COUNT(Name) FROM Employed;\n\
             SELECT * FROM hc DURING [8,20];\n\
             INSERT INTO Employed VALUES ('Zoe', 60000) DURING [12,18];\n\
             SELECT * FROM hc DURING [8,20];\n\
             DELETE FROM Employed WHERE Name = 'Zoe';\n\
             DROP VIEW hc\n");
      let code, out = run [ "serve"; "--echo"; "--script"; script ] in
      Alcotest.(check int) "exit 0" 0 code;
      (* --echo shows the view's rows before and after the write... *)
      check_contains out "| [18,20] |";
      (* ...and the closing report aggregates latency per statement kind
         plus the live-subsystem counters. *)
      check_contains out "serve: 6 op(s)";
      check_contains out "select";
      check_contains out "create-view";
      check_contains out "p99-us";
      check_contains out "cache")

let test_serve_missing_script () =
  with_tempdir (fun dir ->
      let code, out =
        run [ "serve"; "--script"; Filename.concat dir "nope.tsql" ]
      in
      Alcotest.(check bool) "nonzero exit" true (code <> 0);
      check_contains out "nope.tsql")

let test_serve_parse_error () =
  with_tempdir (fun dir ->
      let script = Filename.concat dir "bad.tsql" in
      Out_channel.with_open_text script (fun oc ->
          output_string oc "SELECT FROM ;\n");
      let code, _ = run [ "serve"; "--script"; script ] in
      Alcotest.(check bool) "nonzero exit" true (code <> 0))

(* The observability flags on query: --profile prints the EXPLAIN
   ANALYZE report, --metrics a Prometheus exposition, --trace a Chrome
   trace file with one complete event per span. *)
let test_query_observability_flags () =
  with_tempdir (fun dir ->
      let trace = Filename.concat dir "trace.json" in
      let code, out =
        run
          [
            "query"; "--profile"; "--metrics"; "--trace"; trace;
            "--algorithm"; "parallel(2,sweep)";
            "SELECT COUNT(Name) FROM Employed";
          ]
      in
      Alcotest.(check int) "exit 0" 0 code;
      (* The result still prints first. *)
      check_contains out "| [18,20] |";
      check_contains out "query: SELECT COUNT(Name) FROM Employed";
      check_contains out "plan: parallel(2,sweep)";
      check_contains out "attempts:";
      check_contains out "memory: allocated_nodes=";
      check_contains out "# TYPE tempagg_profile_peak_bytes gauge";
      check_contains out "tempagg_io_pages_read";
      Alcotest.(check bool) "trace file written" true (Sys.file_exists trace);
      let json = In_channel.with_open_text trace In_channel.input_all in
      check_contains json "{\"traceEvents\":[";
      check_contains json "\"name\":\"shard\"")

let test_serve_metrics_every () =
  with_tempdir (fun dir ->
      let script = Filename.concat dir "ops.tsql" in
      Out_channel.with_open_text script (fun oc ->
          output_string oc
            "SELECT COUNT(Name) FROM Employed;\n\
             EXPLAIN ANALYZE SELECT COUNT(Name) FROM Employed;\n\
             SELECT COUNT(Name) FROM Employed DURING [8,20]\n");
      let code, out =
        run [ "serve"; "--metrics-every"; "2"; "--script"; script ]
      in
      Alcotest.(check int) "exit 0" 0 code;
      check_contains out "-- metrics after 2 statement(s) --";
      check_contains out "tempagg_serve_latency_us_bucket";
      check_contains out "explain-analyze";
      check_contains out "serve: 3 op(s)")

let quick name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "cli"
    [
      ( "tempagg",
        [
          quick "query Employed (Table 1)" test_query_employed;
          quick "query error reported" test_query_error_reported;
          quick "explain" test_explain;
          quick "query --algorithm override" test_query_algorithm_override;
          quick "generate + metrics" test_generate_metrics_roundtrip;
          quick "convert + extsort + query pipeline"
            test_convert_extsort_query_pipeline;
          quick "sort csv" test_sort_csv;
          quick "bad subcommand" test_bad_subcommand;
          quick "csv error carries line/row" test_csv_error_carries_position;
          quick "--on-error fallback" test_on_error_fallback_flag;
          quick "--deadline-ms" test_deadline_flag;
          quick "--inject-faults" test_inject_faults_flags;
          quick "serve script" test_serve_script;
          quick "serve missing script" test_serve_missing_script;
          quick "serve parse error" test_serve_parse_error;
          quick "query --profile/--metrics/--trace"
            test_query_observability_flags;
          quick "serve --metrics-every" test_serve_metrics_every;
        ] );
    ]
