(* The interval-join subsystem.

   Property tests pin the predicate algebra to [Interval.relate]
   (exactly one Allen relation per pair, compiled comparison windows
   agreeing with the constructive implementation, converses), and the
   endpoint sweep to the nested-loop oracle on random inputs — forever
   stops, duplicate endpoints and equal starts included.  Integration
   tests check the TSQL pipeline: join-then-aggregate equals
   materialize-then-aggregate for all five aggregates, partition
   pruning does not change answers, EXPLAIN prints the strategy and
   rationale, and a sweep that blows its memory budget falls back to
   the nested loop as a recorded degradation. *)

open Temporal

let c = Chronon.of_int
let iv = Interval.of_ints

let allen_preds =
  List.filter (fun p -> p <> Join.Predicate.Intersects) Join.Predicate.all

(* Small domain, frequent endpoint collisions, occasional forever. *)
let gen_interval =
  QCheck2.Gen.(
    let* s = int_bound 50 in
    let* len = int_bound 12 in
    let* unbounded = map (fun n -> n = 0) (int_bound 15) in
    if unbounded then return (Interval.from (c s)) else return (iv s (s + len)))

let gen_pair = QCheck2.Gen.pair gen_interval gen_interval

let print_pair (a, b) =
  Printf.sprintf "%s %s" (Interval.to_string a) (Interval.to_string b)

let exactly_one_relation =
  QCheck2.Test.make ~name:"exactly one Allen relation holds (compiled)"
    ~count:1000 ~print:print_pair gen_pair (fun (a, b) ->
      let holding =
        List.filter (fun p -> Join.Predicate.holds p a b) allen_preds
      in
      holding = [ Join.Predicate.Allen (Interval.relate a b) ])

let intersects_is_overlap =
  QCheck2.Test.make ~name:"INTERSECTS = Interval.overlaps" ~count:1000
    ~print:print_pair gen_pair (fun (a, b) ->
      Join.Predicate.holds Join.Predicate.Intersects a b
      = Interval.overlaps a b)

let inverse_is_converse =
  QCheck2.Test.make ~name:"inverse p on (b,a) = p on (a,b)" ~count:1000
    ~print:print_pair gen_pair (fun (a, b) ->
      List.for_all
        (fun p ->
          Join.Predicate.holds (Join.Predicate.inverse p) b a
          = Join.Predicate.holds p a b)
        Join.Predicate.all)

let result_interval_sound =
  QCheck2.Test.make ~name:"result_interval: intersection or hull" ~count:1000
    ~print:print_pair gen_pair (fun (a, b) ->
      List.for_all
        (fun p ->
          (not (Join.Predicate.holds p a b))
          ||
          let r = Join.Predicate.result_interval p a b in
          if Join.Predicate.intersecting p then
            Some r = Interval.intersect a b
          else r = Interval.hull a b)
        Join.Predicate.all)

(* Sweep vs oracle, every predicate, random inputs. *)
let gen_sides =
  QCheck2.Gen.(
    pair
      (array_size (int_range 0 25) gen_interval)
      (array_size (int_range 0 25) gen_interval))

let print_sides (l, r) =
  let side a =
    String.concat ";" (Array.to_list (Array.map Interval.to_string a))
  in
  Printf.sprintf "left=[%s] right=[%s]" (side l) (side r)

let sweep_equals_nested_loop =
  QCheck2.Test.make ~name:"sweep = nested loop (all 14 predicates)"
    ~count:300 ~print:print_sides gen_sides (fun (left, right) ->
      List.for_all
        (fun p ->
          Join.Engine.pairs Join.Engine.Sweep p left right
          = Join.Engine.pairs Join.Engine.Nested_loop p left right)
        Join.Predicate.all)

(* The evaluator clips both sides to the DURING window before joining;
   the strategies must still agree on clipped inputs. *)
let clip w side =
  Array.of_list
    (List.filter_map
       (fun ivl -> Interval.intersect ivl w)
       (Array.to_list side))

let sweep_equals_nested_loop_clipped =
  QCheck2.Test.make ~name:"sweep = nested loop under a random window"
    ~count:300
    ~print:(fun (sides, (lo, len)) ->
      Printf.sprintf "%s window=[%d,%d]" (print_sides sides) lo (lo + len))
    QCheck2.Gen.(pair gen_sides (pair (int_bound 50) (int_bound 30)))
    (fun ((left, right), (lo, len)) ->
      let w = iv lo (lo + len) in
      let left = clip w left and right = clip w right in
      List.for_all
        (fun p ->
          Join.Engine.pairs Join.Engine.Sweep p left right
          = Join.Engine.pairs Join.Engine.Nested_loop p left right)
        Join.Predicate.all)

(* Gapless map unit behaviour: lazy eviction during scans, dense slot
   reuse, instrument accounting. *)
let gapless_eviction () =
  let inst = Tempagg.Instrument.create () in
  let g = Join.Gapless.create ~instrument:inst () in
  Join.Gapless.insert g ~idx:0 ~expiry:5;
  Join.Gapless.insert g ~idx:1 ~expiry:3;
  Join.Gapless.insert g ~idx:2 ~expiry:9;
  Alcotest.(check int) "three live" 3 (Join.Gapless.length g);
  Alcotest.(check int) "three allocated" 3 (Tempagg.Instrument.live inst);
  let seen = ref [] in
  Join.Gapless.scan g ~now:4 (fun idx -> seen := idx :: !seen);
  Alcotest.(check (list int)) "expiry 3 evicted" [ 0; 2 ]
    (List.sort compare !seen);
  Alcotest.(check int) "two live after eviction" 2 (Join.Gapless.length g);
  Alcotest.(check int) "instrument freed" 2 (Tempagg.Instrument.live inst);
  Join.Gapless.clear g;
  Alcotest.(check int) "clear frees all" 0 (Tempagg.Instrument.live inst)

(* ------------------------------------------------------------------ *)
(* TSQL integration                                                    *)
(* ------------------------------------------------------------------ *)

let lschema =
  Relation.Schema.of_pairs
    [ ("name", Relation.Value.Tstring); ("salary", Relation.Value.Tint) ]

let rschema =
  Relation.Schema.of_pairs
    [ ("dept", Relation.Value.Tstring); ("load", Relation.Value.Tint) ]

let tuple values ivl = Relation.Tuple.make values ivl

let left_rel =
  Relation.Trel.create lschema
    [
      tuple [| Relation.Value.Str "a"; Relation.Value.Int 10 |] (iv 1 10);
      tuple [| Relation.Value.Str "b"; Relation.Value.Int 20 |] (iv 5 20);
      tuple [| Relation.Value.Str "c"; Relation.Value.Int 30 |] (iv 30 40);
      tuple [| Relation.Value.Str "d"; Relation.Value.Int 40 |]
        (Interval.from (c 45));
    ]

let right_rel =
  Relation.Trel.create rschema
    [
      tuple [| Relation.Value.Str "x"; Relation.Value.Int 1 |] (iv 8 15);
      tuple [| Relation.Value.Str "y"; Relation.Value.Int 2 |] (iv 18 35);
      tuple [| Relation.Value.Str "z"; Relation.Value.Int 3 |] (iv 41 44);
      tuple [| Relation.Value.Str "w"; Relation.Value.Int 4 |] (iv 50 60);
    ]

let catalog () =
  Tsql.Catalog.add (Tsql.Catalog.add (Tsql.Catalog.with_builtins ()) "l" left_rel)
    "r" right_rel

let rows rel =
  List.map
    (fun t -> (Array.to_list (Relation.Tuple.values t), Relation.Tuple.valid t))
    (Relation.Trel.tuples rel)

let check_query_rows what expected actual =
  match (expected, actual) with
  | Ok e, Ok a ->
      Alcotest.(check bool)
        (what ^ ": same rows")
        true
        (rows e = rows a)
  | Error m, _ | _, Error m -> Alcotest.fail (what ^ ": " ^ m)

(* Join-then-aggregate vs materialize-then-aggregate, all five
   aggregates in one statement.  The materialized relation carries the
   joined tuples the nested-loop oracle produces, so only the out-column
   names differ (qualified vs plain) — compare values and intervals. *)
let materialized_join pred =
  let jschema =
    Relation.Schema.of_pairs
      [
        ("lname", Relation.Value.Tstring);
        ("lsalary", Relation.Value.Tint);
        ("rdept", Relation.Value.Tstring);
        ("rload", Relation.Value.Tint);
      ]
  in
  let ltuples = Array.of_list (Relation.Trel.tuples left_rel) in
  let rtuples = Array.of_list (Relation.Trel.tuples right_rel) in
  let livs = Array.map Relation.Tuple.valid ltuples in
  let rivs = Array.map Relation.Tuple.valid rtuples in
  let out = ref [] in
  Join.Engine.run Join.Engine.Nested_loop pred ~left:livs ~right:rivs
    (fun l r ->
      out :=
        Relation.Tuple.make
          (Array.append
             (Relation.Tuple.values ltuples.(l))
             (Relation.Tuple.values rtuples.(r)))
          (Join.Predicate.result_interval pred livs.(l) rivs.(r))
        :: !out);
  Relation.Trel.create jschema (List.rev !out)

let aggregate_identity pred_name pred () =
  let cat =
    Tsql.Catalog.add (catalog ()) "j" (materialized_join pred)
  in
  let joined =
    Tsql.Eval.query cat
      (Printf.sprintf
         "SELECT COUNT(*), SUM(l.salary), AVG(l.salary), MIN(l.salary), \
          MAX(l.salary) FROM l JOIN r ON l.vt %s r.vt"
         pred_name)
  in
  let materialized =
    Tsql.Eval.query cat
      "SELECT COUNT(*), SUM(lsalary), AVG(lsalary), MIN(lsalary), \
       MAX(lsalary) FROM j"
  in
  check_query_rows ("five aggregates over " ^ pred_name) materialized joined

let aggregate_identity_all () =
  List.iter
    (fun p -> aggregate_identity (Join.Predicate.to_string p) p ())
    Join.Predicate.all

let grouped_identity () =
  let pred = Join.Predicate.Intersects in
  let cat = Tsql.Catalog.add (catalog ()) "j" (materialized_join pred) in
  let joined =
    Tsql.Eval.query cat
      "SELECT r.dept, COUNT(*) FROM l JOIN r ON l.vt INTERSECTS r.vt GROUP \
       BY r.dept"
  in
  let materialized =
    Tsql.Eval.query cat "SELECT rdept, COUNT(*) FROM j GROUP BY rdept"
  in
  check_query_rows "grouped count" materialized joined

(* Window + per-side partition pruning: a partitioned catalog (layouts
   whose cardinalities check out) must answer exactly like the
   unpartitioned one. *)
let time_sorted rel =
  Relation.Trel.sort_by_time rel

let layout_of rel blocks =
  (* Split the time-sorted tuple list into [blocks] contiguous runs and
     describe each by its hull — a valid shard layout for a relation
     whose physical order is the concatenation. *)
  let tuples = Relation.Trel.tuples rel in
  let n = List.length tuples in
  let per = (n + blocks - 1) / blocks in
  let rec chunks = function
    | [] -> []
    | l ->
        let rec take k acc = function
          | rest when k = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | x :: tl -> take (k - 1) (x :: acc) tl
        in
        let block, rest = take per [] l in
        block :: chunks rest
  in
  List.map
    (fun block ->
      let hull =
        List.fold_left
          (fun acc t ->
            let ivl = Relation.Tuple.valid t in
            match acc with
            | None -> Some ivl
            | Some h -> Some (Interval.hull h ivl)
          )
          None block
      in
      (Option.get hull, List.length block))
    (chunks tuples)

let partition_pruning_identity () =
  let lsorted = time_sorted left_rel and rsorted = time_sorted right_rel in
  let plain =
    Tsql.Catalog.add
      (Tsql.Catalog.add (Tsql.Catalog.with_builtins ()) "l" lsorted)
      "r" rsorted
  in
  let parted =
    Tsql.Catalog.with_layout
      (Tsql.Catalog.with_layout plain "l" (layout_of lsorted 2))
      "r" (layout_of rsorted 2)
  in
  List.iter
    (fun q ->
      check_query_rows q (Tsql.Eval.query plain q) (Tsql.Eval.query parted q))
    [
      "SELECT COUNT(*) FROM l JOIN r ON l.vt INTERSECTS r.vt DURING [0,16]";
      "SELECT SUM(l.salary) FROM l JOIN r ON l.vt OVERLAPS r.vt DURING [30,60]";
      "SELECT COUNT(*) FROM l JOIN r ON l.vt BEFORE r.vt DURING [0,44]";
    ]

(* Strategy override changes the plan, not the answer. *)
let strategy_irrelevant () =
  let q = "SELECT COUNT(*) FROM l JOIN r ON l.vt INTERSECTS r.vt" in
  check_query_rows "sweep vs nested-loop override"
    (Tsql.Eval.query ~join_strategy:Join.Engine.Sweep (catalog ()) q)
    (Tsql.Eval.query ~join_strategy:Join.Engine.Nested_loop (catalog ()) q)

let explain_prints_strategy () =
  let check_contains what needle hay =
    if
      not
        (let nl = String.length needle and hl = String.length hay in
         let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
         go 0)
    then
      Alcotest.fail (Printf.sprintf "%s: %S not in %S" what needle hay)
  in
  (match
     Tsql.Eval.explain (catalog ())
       "SELECT COUNT(*) FROM l JOIN r ON l.vt OVERLAPS r.vt"
   with
  | Error m -> Alcotest.fail m
  | Ok text ->
      check_contains "strategy" "nested-loop-join" text;
      check_contains "rationale line" "join why:" text;
      check_contains "provenance line" "join stats:" text;
      check_contains "predicate" "OVERLAPS" text);
  match
    Tsql.Eval.explain ~join_strategy:Join.Engine.Sweep (catalog ())
      "SELECT COUNT(*) FROM l JOIN r ON l.vt OVERLAPS r.vt"
  with
  | Error m -> Alcotest.fail m
  | Ok text ->
      check_contains "override strategy" "sweep-join" text;
      check_contains "override rationale" "--join-strategy override" text

(* A sweep that blows its memory budget retries as the nested loop
   under Fallback — same rows, one recorded join degradation — and is
   a structured error under Fail. *)
let wide_catalog () =
  (* Every tuple alive at once: the sweep's active map must hold a
     whole side, so a small budget trips it.  MEETS finds no pairs, so
     the aggregation stage stays within the same budget. *)
  let n = 100 in
  let mk tag i =
    tuple [| Relation.Value.Str tag; Relation.Value.Int i |] (iv 0 (1000 + i))
  in
  let l = Relation.Trel.create lschema (List.init n (mk "a")) in
  let r = Relation.Trel.create rschema (List.init n (mk "x")) in
  Tsql.Catalog.add (Tsql.Catalog.add (Tsql.Catalog.with_builtins ()) "l" l) "r" r

let budget_fallback () =
  let q = "SELECT COUNT(*) FROM l JOIN r ON l.vt MEETS r.vt" in
  (match
     Tsql.Eval.query_robust ~join_strategy:Join.Engine.Sweep
       ~on_error:Tempagg.Engine.Fallback ~memory_budget:400 (wide_catalog ()) q
   with
  | Error m -> Alcotest.fail ("fallback path: " ^ m)
  | Ok { Tsql.Eval.result; degradations } ->
      Alcotest.(check bool)
        "join degradation recorded" true
        (List.exists
           (fun (d : Tempagg.Engine.degradation) ->
             d.Tempagg.Engine.stage = "join:sweep-join")
           degradations);
      let plain =
        Tsql.Eval.query (wide_catalog ()) q |> Result.get_ok
      in
      Alcotest.(check bool) "same rows after fallback" true
        (rows plain = rows result));
  match
    Tsql.Eval.query_robust ~join_strategy:Join.Engine.Sweep
      ~on_error:Tempagg.Engine.Fail ~memory_budget:400 (wide_catalog ()) q
  with
  | Ok _ -> Alcotest.fail "Fail policy should surface the budget error"
  | Error m ->
      Alcotest.(check bool) "budget error" true
        (String.length m > 0)

let telemetry_counts () =
  Join.Telemetry.reset ();
  (match
     Tsql.Eval.query (catalog ())
       "SELECT COUNT(*) FROM l JOIN r ON l.vt INTERSECTS r.vt"
   with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  let sweep, nested, pairs, fallbacks = Join.Telemetry.totals () in
  Alcotest.(check int) "one join ran" 1 (sweep + nested);
  Alcotest.(check int) "five intersecting pairs" 5 pairs;
  Alcotest.(check int) "no fallbacks" 0 fallbacks

(* Parser behaviour: round-trips, reversed sides, rejections. *)
let parse_ok q =
  match Tsql.Parser.parse q with
  | Ok ast -> ast
  | Error m -> Alcotest.fail (q ^ ": " ^ m)

let parser_round_trip () =
  List.iter
    (fun q ->
      let ast = parse_ok q in
      let printed = Tsql.Ast.to_string ast in
      let reparsed = parse_ok printed in
      Alcotest.(check string)
        ("round-trip " ^ q)
        printed
        (Tsql.Ast.to_string reparsed))
    [
      "SELECT COUNT(*) FROM l JOIN r ON l.vt OVERLAPS r.vt";
      "SELECT SUM(l.salary) FROM l JOIN r ON l.vt MET_BY r.vt DURING [0,30] \
       WHERE dept = 'x'";
      "SELECT dept, COUNT(*) FROM l JOIN r ON l.vt DURING r.vt GROUP BY \
       r.dept";
    ]

let parser_reversed_sides () =
  let a = parse_ok "SELECT COUNT(*) FROM l JOIN r ON l.vt BEFORE r.vt" in
  let b = parse_ok "SELECT COUNT(*) FROM l JOIN r ON r.vt AFTER l.vt" in
  Alcotest.(check string)
    "reversed ON normalizes via the converse"
    (Tsql.Ast.to_string a) (Tsql.Ast.to_string b)

let parser_rejections () =
  List.iter
    (fun q ->
      match Tsql.Parser.parse q with
      | Ok _ -> Alcotest.fail ("should not parse: " ^ q)
      | Error _ -> ())
    [
      "SELECT COUNT(*) FROM l JOIN l ON l.vt OVERLAPS l.vt";
      "SELECT COUNT(*) FROM l JOIN r ON l.vt SIDEWAYS r.vt";
      "SELECT COUNT(*) FROM l JOIN r ON l.vt OVERLAPS x.vt";
      "SELECT COUNT(*) FROM l JOIN r ON l.salary OVERLAPS r.vt";
    ];
  match
    Tsql.Eval.query (catalog ())
      "SELECT COUNT(*) FROM l JOIN missing ON l.vt OVERLAPS missing.vt"
  with
  | Ok _ -> Alcotest.fail "unknown right relation should fail analysis"
  | Error m ->
      Alcotest.(check bool) "names the right side" true
        (String.length m > 0)

let () =
  Alcotest.run "join"
    [
      ( "predicates",
        List.map
          (QCheck_alcotest.to_alcotest ~long:false)
          [
            exactly_one_relation;
            intersects_is_overlap;
            inverse_is_converse;
            result_interval_sound;
          ] );
      ( "sweep",
        List.map
          (QCheck_alcotest.to_alcotest ~long:false)
          [ sweep_equals_nested_loop; sweep_equals_nested_loop_clipped ]
        @ [ Alcotest.test_case "gapless eviction" `Quick gapless_eviction ] );
      ( "tsql",
        [
          Alcotest.test_case "join-then-aggregate identity (14 predicates)"
            `Quick aggregate_identity_all;
          Alcotest.test_case "grouped identity" `Quick grouped_identity;
          Alcotest.test_case "partition pruning identity" `Quick
            partition_pruning_identity;
          Alcotest.test_case "strategy override irrelevant to rows" `Quick
            strategy_irrelevant;
          Alcotest.test_case "explain prints join strategy" `Quick
            explain_prints_strategy;
          Alcotest.test_case "budget fallback to nested loop" `Quick
            budget_fallback;
          Alcotest.test_case "telemetry counters" `Quick telemetry_counts;
        ] );
      ( "parser",
        [
          Alcotest.test_case "round-trip" `Quick parser_round_trip;
          Alcotest.test_case "reversed sides" `Quick parser_reversed_sides;
          Alcotest.test_case "rejections" `Quick parser_rejections;
        ] );
    ]
