(* Tests for the network layer: protocol framing, the admission
   controller's admit/queue/shed/degrade state machine, and end-to-end
   client/server sessions over a real TCP socket (ephemeral port),
   including saturation (BUSY), degradation, and graceful drain. *)

let catalog = Tsql.Catalog.with_builtins ()

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let test_protocol_encode () =
  Alcotest.(check string) "pong" "PONG\n" (Net.Protocol.encode Net.Protocol.Pong);
  Alcotest.(check string) "bye" "BYE\n" (Net.Protocol.encode Net.Protocol.Bye);
  Alcotest.(check string) "err" "ERR boom\n"
    (Net.Protocol.encode (Net.Protocol.Err "boom"));
  Alcotest.(check string) "busy" "BUSY queue full\n"
    (Net.Protocol.encode (Net.Protocol.Busy "queue full"));
  Alcotest.(check string) "ok" "OK 2\na\nb\n"
    (Net.Protocol.encode
       (Net.Protocol.Ok_reply
          { degraded = false; trace = None; payload = [ "a"; "b" ] }));
  Alcotest.(check string) "ok degraded" "OK 0 degraded\n"
    (Net.Protocol.encode
       (Net.Protocol.Ok_reply { degraded = true; trace = None; payload = [] }))

let test_protocol_clean_embedded_newlines () =
  (* Frame integrity: payload lines and error text can never smuggle a
     newline that would desynchronize the stream. *)
  Alcotest.(check string) "newlines collapsed" "ERR a; b\n"
    (Net.Protocol.encode (Net.Protocol.Err "a\nb"));
  Alcotest.(check string) "crlf collapsed" "OK 1\nx; y\n"
    (Net.Protocol.encode
       (Net.Protocol.Ok_reply
          { degraded = false; trace = None; payload = [ "x\r\ny" ] }))

let test_protocol_parse_header () =
  let ok s = match Net.Protocol.parse_header s with Ok h -> h | Error e -> Alcotest.fail e in
  Alcotest.(check bool) "pong" true (ok "PONG" = Net.Protocol.H_pong);
  Alcotest.(check bool) "bye" true (ok "BYE\r" = Net.Protocol.H_bye);
  Alcotest.(check bool) "err" true (ok "ERR nope" = Net.Protocol.H_err "nope");
  Alcotest.(check bool) "busy" true
    (ok "BUSY draining" = Net.Protocol.H_busy "draining");
  Alcotest.(check bool) "ok plain" true
    (ok "OK 3" = Net.Protocol.H_ok { count = 3; degraded = false; trace = None });
  Alcotest.(check bool) "ok degraded" true
    (ok "OK 7 degraded"
    = Net.Protocol.H_ok { count = 7; degraded = true; trace = None });
  let rejected s =
    match Net.Protocol.parse_header s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "garbage" true (rejected "HELLO");
  Alcotest.(check bool) "bad count" true (rejected "OK x");
  Alcotest.(check bool) "negative count" true (rejected "OK -1")

let test_protocol_trace_framing () =
  Alcotest.(check bool) "valid id" true
    (Net.Protocol.valid_trace_id "r1-2.x:y_Z");
  Alcotest.(check bool) "empty id" false (Net.Protocol.valid_trace_id "");
  Alcotest.(check bool) "space rejected" false
    (Net.Protocol.valid_trace_id "a b");
  Alcotest.(check bool) "overlong rejected" false
    (Net.Protocol.valid_trace_id (String.make 65 'a'));
  Alcotest.(check string) "ok with trace" "OK 1 trace=r7-1\nx\n"
    (Net.Protocol.encode
       (Net.Protocol.Ok_reply
          { degraded = false; trace = Some "r7-1"; payload = [ "x" ] }));
  Alcotest.(check string) "degraded and trace" "OK 0 degraded trace=a\n"
    (Net.Protocol.encode
       (Net.Protocol.Ok_reply
          { degraded = true; trace = Some "a"; payload = [] }));
  (* An invalid id is dropped rather than corrupting the header. *)
  Alcotest.(check string) "invalid id dropped" "OK 0\n"
    (Net.Protocol.encode
       (Net.Protocol.Ok_reply
          { degraded = false; trace = Some "a b"; payload = [] }));
  let ok s =
    match Net.Protocol.parse_header s with
    | Ok h -> h
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "header with trace" true
    (ok "OK 2 trace=r7-1"
    = Net.Protocol.H_ok { count = 2; degraded = false; trace = Some "r7-1" });
  Alcotest.(check bool) "degraded then trace" true
    (ok "OK 2 degraded trace=r7-1"
    = Net.Protocol.H_ok { count = 2; degraded = true; trace = Some "r7-1" });
  let rejected s =
    match Net.Protocol.parse_header s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "flags are ordered" true
    (rejected "OK 2 trace=a degraded");
  Alcotest.(check bool) "bad id in header rejected" true
    (rejected "OK 2 trace=a;b")

let test_protocol_trace_verbs () =
  Alcotest.(check bool) "plain statement passes through" true
    (Net.Protocol.split_trace "SELECT 1" = Ok (None, "SELECT 1"));
  (match Net.Protocol.split_trace "TRACE c1-1 SELECT 1" with
  | Ok (Some "c1-1", "SELECT 1") -> ()
  | _ -> Alcotest.fail "TRACE prefix must split off");
  (* TRACE DUMP is a verb, never a statement prefix. *)
  Alcotest.(check bool) "dump passes through split" true
    (Net.Protocol.split_trace "TRACE DUMP abc" = Ok (None, "TRACE DUMP abc"));
  Alcotest.(check bool) "bad id rejected" true
    (Result.is_error (Net.Protocol.split_trace "TRACE a!b SELECT 1"));
  Alcotest.(check bool) "missing statement rejected" true
    (Result.is_error (Net.Protocol.split_trace "TRACE abc"));
  Alcotest.(check bool) "metrics verb" true
    (Net.Protocol.metrics_request " metrics ");
  Alcotest.(check bool) "metrics takes no arguments" false
    (Net.Protocol.metrics_request "METRICS now");
  (match Net.Protocol.trace_dump_request "trace dump" with
  | Some (Ok None) -> ()
  | _ -> Alcotest.fail "bare TRACE DUMP");
  (match Net.Protocol.trace_dump_request "TRACE DUMP r1-1" with
  | Some (Ok (Some "r1-1")) -> ()
  | _ -> Alcotest.fail "TRACE DUMP with an id");
  (match Net.Protocol.trace_dump_request "TRACE DUMP bad!id" with
  | Some (Error _) -> ()
  | _ -> Alcotest.fail "an invalid dump id is an error, not a statement");
  match Net.Protocol.trace_dump_request "TRACE r1-1 SELECT 1" with
  | None -> ()
  | _ -> Alcotest.fail "a TRACE prefix is not the dump verb"

let test_protocol_sleep () =
  Alcotest.(check bool) "parses" true
    (Net.Protocol.sleep_request "SLEEP 25" = Some 25.);
  Alcotest.(check bool) "case-insensitive" true
    (Net.Protocol.sleep_request "sleep 1.5" = Some 1.5);
  Alcotest.(check bool) "negative rejected" true
    (Net.Protocol.sleep_request "SLEEP -1" = None);
  Alcotest.(check bool) "not a sleep" true
    (Net.Protocol.sleep_request "SELECT 1" = None)

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

let submit_tag adm tag =
  Net.Admission.submit adm (fun ~degraded -> (tag, degraded))

let test_admission_bounds () =
  (* 2 workers + depth 3: submits 1..5 admitted, 6th shed.  No worker
     ever takes, so everything counts against the shared bound. *)
  let adm = Net.Admission.create ~workers:2 ~queue_depth:3 () in
  for i = 1 to 5 do
    match submit_tag adm i with
    | Net.Admission.Admitted _ -> ()
    | Net.Admission.Shed r -> Alcotest.fail (Printf.sprintf "submit %d shed: %s" i r)
  done;
  (match submit_tag adm 6 with
  | Net.Admission.Shed reason ->
      Alcotest.(check bool) "reason is structured" true
        (String.length reason > 0)
  | Net.Admission.Admitted _ -> Alcotest.fail "6th submit must shed");
  Alcotest.(check int) "admitted" 5 (Net.Admission.admitted_total adm);
  Alcotest.(check int) "shed" 1 (Net.Admission.shed_total adm);
  (* Taking moves work from queued to in flight — the shared bound is
     unchanged, so the next submit still sheds. *)
  (match Net.Admission.take adm with
  | Some (1, _) -> ()
  | _ -> Alcotest.fail "take returns the oldest submit");
  (match submit_tag adm 7 with
  | Net.Admission.Shed _ -> ()
  | Net.Admission.Admitted _ ->
      Alcotest.fail "take alone must not free an admission slot");
  (* Only finishing the request frees the slot. *)
  Net.Admission.finish adm;
  (match submit_tag adm 8 with
  | Net.Admission.Admitted _ -> ()
  | Net.Admission.Shed _ ->
      Alcotest.fail "finish must free an admission slot");
  Net.Admission.stop adm

let test_admission_degrade_watermark () =
  (* 1 worker, depth 4, watermark 2.  Take one job in flight (worker
     busy); the 1st queued submit is below the watermark, the 2nd hits
     it and degrades. *)
  let adm =
    Net.Admission.create ~degrade_watermark:2 ~workers:1 ~queue_depth:4 ()
  in
  (match submit_tag adm 0 with
  | Net.Admission.Admitted { degraded; _ } ->
      Alcotest.(check bool) "idle pool never degrades" false degraded
  | Net.Admission.Shed _ -> Alcotest.fail "must admit");
  ignore (Net.Admission.take adm);
  (match submit_tag adm 1 with
  | Net.Admission.Admitted { degraded; queued_behind } ->
      Alcotest.(check bool) "below watermark" false degraded;
      Alcotest.(check int) "queue was empty" 0 queued_behind
  | Net.Admission.Shed _ -> Alcotest.fail "must admit");
  (match submit_tag adm 2 with
  | Net.Admission.Admitted { degraded; _ } ->
      Alcotest.(check bool) "at watermark degrades" true degraded
  | Net.Admission.Shed _ -> Alcotest.fail "must admit");
  Alcotest.(check int) "degraded counted" 1 (Net.Admission.degraded_total adm);
  Alcotest.(check bool) "flag travels with the request" true
    (match Net.Admission.take adm with Some (1, false) -> true | _ -> false);
  Alcotest.(check bool) "degraded request carries its flag" true
    (match Net.Admission.take adm with Some (2, true) -> true | _ -> false);
  Net.Admission.stop adm

let test_admission_drain_and_evict () =
  let adm = Net.Admission.create ~workers:1 ~queue_depth:8 () in
  List.iter (fun i -> ignore (submit_tag adm i)) [ 1; 2; 3 ];
  Net.Admission.drain ~reason:"draining: test" adm;
  (match submit_tag adm 99 with
  | Net.Admission.Shed reason ->
      Alcotest.(check string) "drain reason" "draining: test" reason
  | Net.Admission.Admitted _ -> Alcotest.fail "drain must shed new work");
  (* Queued work survives the drain... *)
  Alcotest.(check bool) "queued still served" true
    (match Net.Admission.take adm with Some (1, _) -> true | _ -> false);
  (* ...until the deadline evicts it, in submission order. *)
  let evicted = List.map fst (Net.Admission.shed_queued adm) in
  Alcotest.(check (list int)) "evicted in order" [ 2; 3 ] evicted;
  Net.Admission.stop adm;
  Alcotest.(check bool) "stopped take yields None" true
    (Net.Admission.take adm = None)

let test_admission_take_blocks_until_stop () =
  let adm = Net.Admission.create ~workers:1 ~queue_depth:1 () in
  let taker = Domain.spawn (fun () -> Net.Admission.take adm) in
  Unix.sleepf 0.02;
  Net.Admission.stop adm;
  Alcotest.(check bool) "woken with None" true (Domain.join taker = None)

(* ------------------------------------------------------------------ *)
(* Client/server end to end                                            *)
(* ------------------------------------------------------------------ *)

let with_server ?(config = Net.Server.default_config) f =
  let config = { config with Net.Server.transport = Net.Server.Tcp 0 } in
  let srv = Net.Server.create ~config catalog in
  let handle = Domain.spawn (fun () -> Net.Server.run srv) in
  let port = Option.get (Net.Server.port srv) in
  (* The listener is bound before [create] returns, so connecting now
     cannot race the event loop.  [report_of] shuts the server down and
     joins it exactly once (joining twice is an error). *)
  let joined = ref None in
  let report_of () =
    match !joined with
    | Some r -> r
    | None ->
        Net.Server.shutdown srv;
        let r = Domain.join handle in
        joined := Some r;
        r
  in
  Fun.protect
    ~finally:(fun () -> ignore (report_of ()))
    (fun () -> f port report_of)

(* (degraded, payload) of an [OK] reply; anything else fails the test. *)
let expect_ok = function
  | Ok (Net.Protocol.Ok_reply { degraded; payload; _ }) -> (degraded, payload)
  | Ok other -> Alcotest.fail ("expected OK, got " ^ Net.Protocol.encode other)
  | Error e -> Alcotest.fail e

let test_e2e_session () =
  with_server (fun port report_of ->
      let c = Net.Client.connect ~port () in
      Fun.protect ~finally:(fun () -> Net.Client.close c) (fun () ->
          (match Net.Client.request c "PING" with
          | Ok Net.Protocol.Pong -> ()
          | _ -> Alcotest.fail "PING must answer PONG");
          let degraded, payload =
            expect_ok
              (Net.Client.request c
                 "SELECT COUNT(name) FROM Employed DURING [5,15]")
          in
          Alcotest.(check bool) "rows come back" true (List.length payload > 0);
          Alcotest.(check bool) "not degraded when idle" false degraded;
          (match Net.Client.request c "SELEKT nope" with
          | Ok (Net.Protocol.Err _) -> ()
          | _ -> Alcotest.fail "parse failure must answer ERR");
          (* The connection survives a statement error. *)
          ignore
            (expect_ok (Net.Client.request c "SELECT COUNT(name) FROM Employed"));
          match Net.Client.request c "QUIT" with
          | Ok Net.Protocol.Bye -> ()
          | _ -> Alcotest.fail "QUIT must answer BYE");
      let report = report_of () in
      Alcotest.(check bool) "connection counted" true (report.Net.Server.accepted >= 1);
      Alcotest.(check bool) "statements counted" true (report.Net.Server.requests >= 3);
      Alcotest.(check int) "one ERR" 1 report.Net.Server.errors;
      Alcotest.(check bool) "clean drain" true report.Net.Server.drained)

let test_e2e_writes_are_connection_local () =
  with_server (fun port _report_of ->
      let a = Net.Client.connect ~port () in
      let b = Net.Client.connect ~port () in
      Fun.protect
        ~finally:(fun () ->
          Net.Client.close a;
          Net.Client.close b)
        (fun () ->
          ignore
            (expect_ok
               (Net.Client.request a
                  "INSERT INTO Employed VALUES ('Zoe', 99000) DURING [1,5]"));
          let count c =
            let _, payload =
              expect_ok
                (Net.Client.request c "SELECT COUNT(name) FROM Employed DURING [1,2]")
            in
            String.concat " " payload
          in
          (* A sees its insert; B's session still has the pristine
             builtin relation — sessions never share mutable state. *)
          Alcotest.(check bool) "sessions isolated" true (count a <> count b)))

let saturation_config =
  {
    Net.Server.default_config with
    Net.Server.domains = 1;
    queue_depth = 0;
    drain_timeout_ms = 3_000;
  }

let test_e2e_busy_when_saturated () =
  with_server ~config:saturation_config (fun port _report_of ->
      let blocker = Net.Client.connect ~port () in
      let prober = Net.Client.connect ~port () in
      Fun.protect
        ~finally:(fun () ->
          Net.Client.close blocker;
          Net.Client.close prober)
        (fun () ->
          (* Park the only worker, then probe: statements shed with
             BUSY, but PING still answers — liveness survives
             saturation. *)
          Net.Client.send blocker "SLEEP 400";
          Unix.sleepf 0.1;
          (match Net.Client.request prober "SELECT COUNT(name) FROM Employed" with
          | Ok (Net.Protocol.Busy reason) ->
              Alcotest.(check bool) "reason mentions the queue" true
                (String.length reason > 0)
          | Ok other ->
              Alcotest.fail ("expected BUSY, got " ^ Net.Protocol.encode other)
          | Error e -> Alcotest.fail e);
          (match Net.Client.request prober "PING" with
          | Ok Net.Protocol.Pong -> ()
          | _ -> Alcotest.fail "PING must bypass admission");
          (* The parked statement still completes normally. *)
          match Net.Client.read_reply blocker with
          | Ok (Net.Protocol.Ok_reply _) -> ()
          | _ -> Alcotest.fail "blocker must get its reply"))

let test_e2e_degraded_under_queueing () =
  let config =
    {
      Net.Server.default_config with
      Net.Server.domains = 1;
      queue_depth = 4;
      degrade_watermark = Some 1;
      drain_timeout_ms = 3_000;
    }
  in
  with_server ~config (fun port _report_of ->
      let blocker = Net.Client.connect ~port () in
      let queued = Net.Client.connect ~port () in
      Fun.protect
        ~finally:(fun () ->
          Net.Client.close blocker;
          Net.Client.close queued)
        (fun () ->
          Net.Client.send blocker "SLEEP 300";
          Unix.sleepf 0.1;
          (* Queued behind a saturated pool at the watermark: admitted,
             executed, and the reply is marked degraded. *)
          let degraded, _ =
            expect_ok (Net.Client.request queued "SELECT COUNT(name) FROM Employed")
          in
          Alcotest.(check bool) "reply marked degraded" true degraded;
          match Net.Client.read_reply blocker with
          | Ok (Net.Protocol.Ok_reply _) -> ()
          | _ -> Alcotest.fail "blocker must get its reply"))

let test_e2e_graceful_drain_with_inflight () =
  with_server ~config:saturation_config (fun port report_of ->
      let c = Net.Client.connect ~port () in
      Fun.protect ~finally:(fun () -> Net.Client.close c) (fun () ->
          (* Shutdown with a statement in flight: the drain finishes the
             work and flushes the reply (into the socket buffer) before
             the server exits. *)
          Net.Client.send c "SLEEP 200";
          Unix.sleepf 0.05;
          let report = report_of () in
          (match Net.Client.read_reply c with
          | Ok (Net.Protocol.Ok_reply _) -> ()
          | _ -> Alcotest.fail "in-flight reply must be flushed on drain");
          Alcotest.(check bool) "drained cleanly" true report.Net.Server.drained;
          Alcotest.(check bool) "the request ran" true
            (report.Net.Server.requests >= 1)))

(* A traced statement leaves a reconstructable record: the reply echoes
   the request id, and — with the slowlog threshold at 0, so every
   statement pins as "slow" — the flight recorder holds the full span
   tree: request root opened at accept-side dispatch, the queue wait,
   the worker-side execute span, and the engine spans underneath, every
   parent resolvable to the root within the same trace. *)
let test_e2e_trace_span_tree () =
  Obs.Recorder.clear ();
  let config =
    {
      Net.Server.default_config with
      Net.Server.slowlog = Some (Obs.Slowlog.create ~threshold_ms:0. ());
    }
  in
  let id = "e2e-span-tree" in
  with_server ~config (fun port report_of ->
      let c = Net.Client.connect ~port () in
      Fun.protect ~finally:(fun () -> Net.Client.close c) (fun () ->
          match
            Net.Client.request ~trace:id c
              "SELECT COUNT(name) FROM Employed DURING [5,15]"
          with
          | Ok (Net.Protocol.Ok_reply { trace; _ }) ->
              Alcotest.(check (option string)) "id echoed" (Some id) trace
          | Ok other ->
              Alcotest.fail ("expected OK, got " ^ Net.Protocol.encode other)
          | Error e -> Alcotest.fail e);
      ignore (report_of ()));
  match Obs.Recorder.find id with
  | None -> Alcotest.fail "a slow request must be pinned"
  | Some p ->
      Alcotest.(check string) "pinned as slow" "slow" p.Obs.Recorder.p_reason;
      let spans = p.Obs.Recorder.p_spans in
      let has l =
        List.exists (fun (s : Obs.Trace.span) -> s.label = l) spans
      in
      List.iter
        (fun l -> Alcotest.(check bool) ("span " ^ l) true (has l))
        [ "request"; "queue-wait"; "execute" ];
      Alcotest.(check bool) "engine spans nest under the request" true
        (List.exists
           (fun (s : Obs.Trace.span) ->
             s.label <> "request" && s.label <> "queue-wait"
             && s.label <> "execute")
           spans);
      let root =
        List.find (fun (s : Obs.Trace.span) -> s.label = "request") spans
      in
      Alcotest.(check bool) "root has no parent" true (root.parent = None);
      Alcotest.(check bool) "root records the outcome" true
        (List.mem_assoc "outcome" root.attrs);
      let tbl = Hashtbl.create 16 in
      List.iter (fun (s : Obs.Trace.span) -> Hashtbl.replace tbl s.id s) spans;
      List.iter
        (fun (s : Obs.Trace.span) ->
          Alcotest.(check string) "span carries the request id" id s.trace;
          Alcotest.(check bool)
            (Printf.sprintf "%s duration non-negative" s.label)
            true (s.stop_us >= s.start_us);
          let rec walk guard (x : Obs.Trace.span) =
            if guard = 0 then Alcotest.fail "parent cycle"
            else
              match x.parent with
              | None ->
                  Alcotest.(check int)
                    (s.label ^ " reaches the request root")
                    root.id x.id
              | Some parent -> (
                  match Hashtbl.find_opt tbl parent with
                  | None ->
                      Alcotest.fail
                        (Printf.sprintf "parent %d of %s not in the trace"
                           parent x.label)
                  | Some px -> walk (guard - 1) px)
          in
          walk 64 s)
        spans

(* METRICS and TRACE DUMP are introspection verbs answered on the event
   loop, like PING: a Prometheus exposition (build identity, uptime and
   recorder gauges included) and a Chrome trace JSON dump. *)
let test_e2e_metrics_and_dump_verbs () =
  Obs.Recorder.clear ();
  let config =
    {
      Net.Server.default_config with
      Net.Server.slowlog = Some (Obs.Slowlog.create ~threshold_ms:0. ());
    }
  in
  with_server ~config (fun port _report_of ->
      let c = Net.Client.connect ~port () in
      let id = "e2e-dump-verb" in
      let contains hay needle =
        let lh = String.length hay and ln = String.length needle in
        let rec go i =
          i + ln <= lh && (String.sub hay i ln = needle || go (i + 1))
        in
        go 0
      in
      Fun.protect ~finally:(fun () -> Net.Client.close c) (fun () ->
          ignore
            (expect_ok
               (Net.Client.request ~trace:id c
                  "SELECT COUNT(name) FROM Employed"));
          let _, payload = expect_ok (Net.Client.request c "METRICS") in
          let text = String.concat "\n" payload in
          List.iter
            (fun needle ->
              Alcotest.(check bool) ("exposition has " ^ needle) true
                (contains text needle))
            [
              "tempagg_build_info";
              "tempagg_uptime_seconds";
              "tempagg_recorder_ring_spans";
              "tempagg_net_queued";
            ];
          let _, dump_lines =
            expect_ok (Net.Client.request c ("TRACE DUMP " ^ id))
          in
          let dump = String.concat "\n" dump_lines in
          Alcotest.(check bool) "chrome envelope" true
            (contains dump "traceEvents");
          Alcotest.(check bool) "dump holds the trace" true
            (contains dump ("\"trace\":\"" ^ id ^ "\""));
          match Net.Client.request c "TRACE DUMP bad!id" with
          | Ok (Net.Protocol.Err _) -> ()
          | _ -> Alcotest.fail "an invalid dump id must answer ERR"))

(* Shed requests never reach a worker, but their trace is still worth
   keeping: the dispatch path closes the root with outcome=shed and pins
   it, so the BUSY is reconstructable after the fact. *)
let test_e2e_shed_request_pinned () =
  Obs.Recorder.clear ();
  with_server ~config:saturation_config (fun port _report_of ->
      let blocker = Net.Client.connect ~port () in
      let prober = Net.Client.connect ~port () in
      Fun.protect
        ~finally:(fun () ->
          Net.Client.close blocker;
          Net.Client.close prober)
        (fun () ->
          Net.Client.send blocker "SLEEP 300";
          Unix.sleepf 0.1;
          (match
             Net.Client.request ~trace:"e2e-shed" prober
               "SELECT COUNT(name) FROM Employed"
           with
          | Ok (Net.Protocol.Busy _) -> ()
          | _ -> Alcotest.fail "the probe must shed");
          (match Obs.Recorder.find "e2e-shed" with
          | Some p ->
              Alcotest.(check string) "pinned as shed" "shed"
                p.Obs.Recorder.p_reason
          | None -> Alcotest.fail "a shed request must be pinned");
          match Net.Client.read_reply blocker with
          | Ok (Net.Protocol.Ok_reply _) -> ()
          | _ -> Alcotest.fail "blocker must get its reply"))

let test_e2e_report_render () =
  with_server (fun port report_of ->
      let c = Net.Client.connect ~port () in
      ignore (Net.Client.request c "PING");
      Net.Client.close c;
      let report = report_of () in
      let text = Net.Server.report_to_string report in
      let contains hay needle =
        let lh = String.length hay and ln = String.length needle in
        let rec go i =
          i + ln <= lh && (String.sub hay i ln = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "mentions drain" true (contains text "drain"))

let () =
  Alcotest.run "net"
    [
      ( "protocol",
        [
          Alcotest.test_case "encode" `Quick test_protocol_encode;
          Alcotest.test_case "frame integrity" `Quick
            test_protocol_clean_embedded_newlines;
          Alcotest.test_case "parse_header" `Quick test_protocol_parse_header;
          Alcotest.test_case "trace framing" `Quick
            test_protocol_trace_framing;
          Alcotest.test_case "trace verbs" `Quick test_protocol_trace_verbs;
          Alcotest.test_case "sleep verb" `Quick test_protocol_sleep;
        ] );
      ( "admission",
        [
          Alcotest.test_case "bounds admit/queue/shed" `Quick
            test_admission_bounds;
          Alcotest.test_case "degrade watermark" `Quick
            test_admission_degrade_watermark;
          Alcotest.test_case "drain and evict" `Quick
            test_admission_drain_and_evict;
          Alcotest.test_case "take blocks until stop" `Quick
            test_admission_take_blocks_until_stop;
        ] );
      ( "server",
        [
          Alcotest.test_case "session round trip" `Quick test_e2e_session;
          Alcotest.test_case "writes are connection-local" `Quick
            test_e2e_writes_are_connection_local;
          Alcotest.test_case "BUSY at saturation, PING alive" `Quick
            test_e2e_busy_when_saturated;
          Alcotest.test_case "degraded under queueing" `Quick
            test_e2e_degraded_under_queueing;
          Alcotest.test_case "graceful drain with in-flight work" `Quick
            test_e2e_graceful_drain_with_inflight;
          Alcotest.test_case "trace span tree" `Quick test_e2e_trace_span_tree;
          Alcotest.test_case "METRICS and TRACE DUMP verbs" `Quick
            test_e2e_metrics_and_dump_verbs;
          Alcotest.test_case "shed request pinned" `Quick
            test_e2e_shed_request_pinned;
          Alcotest.test_case "report renders" `Quick test_e2e_report_render;
        ] );
    ]
