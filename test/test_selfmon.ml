(* Tests for the self-monitoring layer: the scraper's delta encoding
   into the [_metrics] / [_requests] temporal relations, retention and
   engine-driven downsampling (checked as a temporal-aggregate
   equivalence, per the paper's semantics), the TSQL oracle for
   AVG-over-DURING against the self-relations, engine-backed SLO
   verdicts with a forced breach, and an end-to-end TCP session where
   the server's own telemetry is queried like any other relation. *)

open Temporal
open Relation

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1. +. Float.abs a)

let check_float msg expected got =
  if not (feq expected got) then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected got

let test_config =
  {
    Selfmon.Scrape.tick_us = 1_000_000;
    retention_us = 3_600_000_000;
    raw_us = 300_000_000;
    compact_window_us = 60_000_000;
    latency_families = [ "lat_us" ];
    error_families = [ "errs_total" ];
  }

(* Render one [_metrics] tuple as (name, labels, value, start, stop). *)
let metric_rows scraper =
  List.map
    (fun tu ->
      let s v =
        match Tuple.value tu v with Value.Str x -> x | _ -> "?"
      in
      let f =
        match Tuple.value tu 2 with Value.Float x -> x | _ -> nan
      in
      let iv = Tuple.valid tu in
      ( s 0,
        s 1,
        f,
        Chronon.to_int (Interval.start iv),
        Chronon.to_int (Interval.stop iv) ))
    (Trel.tuples (Selfmon.Scrape.metrics_relation scraper))

(* ------------------------------------------------------------------ *)
(* Scraping: gauges, counter rates, request rows                       *)
(* ------------------------------------------------------------------ *)

let test_scrape_gauge_and_counter_rate () =
  let registry = Obs.Metrics.create () in
  let g = Obs.Metrics.gauge registry "g" in
  let c = Obs.Metrics.counter registry "c_total" in
  let scraper = Selfmon.Scrape.create ~config:test_config registry in
  Obs.Metrics.set g 10.;
  (* First tick records the delta baseline and emits nothing. *)
  Selfmon.Scrape.tick ~now_us:1_000_000 scraper;
  Alcotest.(check (pair int int)) "baseline emits nothing" (0, 0)
    (Selfmon.Scrape.row_counts scraper);
  Obs.Metrics.set g 20.;
  Obs.Metrics.add c 5.;
  Selfmon.Scrape.tick ~now_us:2_000_000 scraper;
  let rows = metric_rows scraper in
  Alcotest.(check int) "one row per series" 2 (List.length rows);
  (match List.find_opt (fun (n, _, _, _, _) -> n = "g") rows with
  | Some (_, labels, v, start, stop) ->
      Alcotest.(check string) "no labels" "" labels;
      check_float "gauge stored as-is" 20. v;
      Alcotest.(check int) "row start" 1_000_000 start;
      Alcotest.(check int) "closed stop just before the next tick"
        1_999_999 stop
  | None -> Alcotest.fail "missing _metrics row for the gauge");
  (match List.find_opt (fun (n, _, _, _, _) -> n = "c_total") rows with
  | Some (_, _, v, _, _) -> check_float "counter delta per second" 5. v
  | None -> Alcotest.fail "missing _metrics row for the counter");
  (* A counter that does not move scrapes as a zero rate, and a reset
     (monotonicity violation) clamps at zero instead of going negative. *)
  Selfmon.Scrape.tick ~now_us:3_000_000 scraper;
  match
    List.find_opt
      (fun (n, _, _, start, _) -> n = "c_total" && start = 2_000_000)
      (metric_rows scraper)
  with
  | Some (_, _, v, _, _) -> check_float "idle counter rate" 0. v
  | None -> Alcotest.fail "missing second counter row"

let test_scrape_labels_rendered () =
  let registry = Obs.Metrics.create () in
  let g =
    Obs.Metrics.gauge registry ~labels:[ ("b", "2"); ("a", "1") ] "g"
  in
  Obs.Metrics.set g 7.;
  let scraper = Selfmon.Scrape.create ~config:test_config registry in
  Selfmon.Scrape.tick ~now_us:1_000_000 scraper;
  Selfmon.Scrape.tick ~now_us:2_000_000 scraper;
  match metric_rows scraper with
  | [ (_, labels, _, _, _) ] ->
      (* Sorted by key, exposition-style — WHERE labels = '...' matches
         what METRICS prints. *)
      Alcotest.(check string) "label rendering" "a=\"1\",b=\"2\"" labels
  | rows -> Alcotest.failf "expected one row, got %d" (List.length rows)

let test_scrape_requests_rows () =
  let registry = Obs.Metrics.create () in
  let h =
    Obs.Metrics.histogram registry ~labels:[ ("kind", "select") ] "lat_us"
  in
  let errs = Obs.Metrics.counter registry "errs_total" in
  let scraper = Selfmon.Scrape.create ~config:test_config registry in
  Obs.Histogram.observe h 100.;
  Selfmon.Scrape.tick ~now_us:1_000_000 scraper;
  (* Only the post-baseline observations land in this interval's row. *)
  List.iter (Obs.Histogram.observe h) [ 200.; 300.; 400. ];
  Obs.Metrics.add errs 2.;
  Selfmon.Scrape.tick ~now_us:2_000_000 scraper;
  let rows = Trel.tuples (Selfmon.Scrape.requests_relation scraper) in
  Alcotest.(check int) "ok + error rows" 2 (List.length rows);
  let find outcome =
    List.find_opt
      (fun tu -> Tuple.value tu 1 = Value.Str outcome)
      rows
  in
  (match find "ok" with
  | Some tu ->
      Alcotest.(check bool) "kind from the histogram label" true
        (Tuple.value tu 0 = Value.Str "select");
      (match Tuple.value tu 2 with
      | Value.Float rate -> check_float "count delta per second" 3. rate
      | v -> Alcotest.failf "rate not a float: %s" (Value.to_string v));
      (match (Tuple.value tu 3, Tuple.value tu 4) with
      | Value.Float p50, Value.Float p99 ->
          (* Nearest-rank over the bucket-count deltas: the estimate is
             the bucket upper bound, within gamma (5%) of the exact
             in-interval answer. *)
          Alcotest.(check bool) "p50 within 5% above 300" true
            (p50 >= 300. && p50 <= 300. *. 1.05);
          Alcotest.(check bool) "p99 within 5% above 400" true
            (p99 >= 400. && p99 <= 400. *. 1.05)
      | _ -> Alcotest.fail "percentiles must be floats on an ok row")
  | None -> Alcotest.fail "missing outcome=ok request row");
  match find "error" with
  | Some tu ->
      Alcotest.(check bool) "kindless error counter folds to _all" true
        (Tuple.value tu 0 = Value.Str "_all");
      (match Tuple.value tu 2 with
      | Value.Float rate -> check_float "error rate" 2. rate
      | v -> Alcotest.failf "rate not a float: %s" (Value.to_string v));
      Alcotest.(check bool) "error rows carry no percentiles" true
        (Tuple.value tu 3 = Value.Null && Tuple.value tu 4 = Value.Null)
  | None -> Alcotest.fail "missing outcome=error request row"

(* ------------------------------------------------------------------ *)
(* The engine as oracle: AVG(value) DURING over _metrics               *)
(* ------------------------------------------------------------------ *)

(* Drive a gauge through known values at known ticks, then check that
   the engine's temporal AVG over [_metrics] reproduces the hand-built
   timeline — including DURING clipping mid-row. *)
let test_metrics_avg_during_oracle () =
  let registry = Obs.Metrics.create () in
  let g = Obs.Metrics.gauge registry "g" in
  let scraper = Selfmon.Scrape.create ~config:test_config registry in
  Selfmon.Scrape.tick ~now_us:1_000_000 scraper;
  Obs.Metrics.set g 10.;
  Selfmon.Scrape.tick ~now_us:2_000_000 scraper;
  Obs.Metrics.set g 30.;
  Selfmon.Scrape.tick ~now_us:3_000_000 scraper;
  let source = Selfmon.Monitor.source (Selfmon.Scrape.catalog scraper) in
  let fetch q =
    match source.Obs.Slo.query q with
    | Ok rows ->
        List.sort (fun a b -> compare a.Obs.Slo.row_start b.Obs.Slo.row_start)
          rows
    | Error msg -> Alcotest.failf "query failed: %s" msg
  in
  (* Whole timeline: [1s,2s) at 10, [2s,3s) at 30. *)
  (match fetch "SELECT AVG(value) FROM _metrics WHERE name = 'g'" with
  | [ a; b ] ->
      Alcotest.(check int) "first segment start" 1_000_000 a.Obs.Slo.row_start;
      Alcotest.(check int) "first segment stop" 2_000_000 a.Obs.Slo.row_stop;
      check_float "first segment value" 10. a.Obs.Slo.row_value;
      Alcotest.(check int) "second segment start" 2_000_000 b.Obs.Slo.row_start;
      Alcotest.(check int) "second segment stop" 3_000_000 b.Obs.Slo.row_stop;
      check_float "second segment value" 30. b.Obs.Slo.row_value
  | rows -> Alcotest.failf "expected 2 segments, got %d" (List.length rows));
  (* DURING clips mid-row on both sides. *)
  match
    fetch
      "SELECT AVG(value) FROM _metrics DURING [1500000,2499999] WHERE name \
       = 'g'"
  with
  | [ a; b ] ->
      Alcotest.(check int) "clipped start" 1_500_000 a.Obs.Slo.row_start;
      Alcotest.(check int) "clip boundary" 2_000_000 a.Obs.Slo.row_stop;
      check_float "clipped value unchanged" 10. a.Obs.Slo.row_value;
      Alcotest.(check int) "clipped stop" 2_500_000 b.Obs.Slo.row_stop;
      check_float "second clipped value" 30. b.Obs.Slo.row_value
  | rows ->
      Alcotest.failf "expected 2 clipped segments, got %d" (List.length rows)

(* ------------------------------------------------------------------ *)
(* Retention                                                           *)
(* ------------------------------------------------------------------ *)

let test_retention_drops_old_rows () =
  let registry = Obs.Metrics.create () in
  let g = Obs.Metrics.gauge registry "g" in
  Obs.Metrics.set g 1.;
  let config = { test_config with Selfmon.Scrape.retention_us = 2_500_000 } in
  let scraper = Selfmon.Scrape.create ~config registry in
  for i = 1 to 6 do
    Selfmon.Scrape.scrape ~now_us:(i * 1_000_000) scraper
  done;
  let rows = metric_rows scraper in
  Alcotest.(check bool) "history was trimmed" true (List.length rows > 0);
  let horizon = 6_000_000 - 2_500_000 in
  List.iter
    (fun (name, _, _, _, stop) ->
      if stop < horizon then
        Alcotest.failf "row %s ends at %d, before the horizon %d" name stop
          horizon)
    rows

(* ------------------------------------------------------------------ *)
(* Compaction as a temporal-aggregate equivalence (QCheck)             *)
(* ------------------------------------------------------------------ *)

(* The correctness claim for downsampling: replacing old rows by their
   SPAN-w AVG (splitting straddlers at the span-aligned boundary first)
   changes no SPAN-w arithmetic-mean aggregate.  Drive two scrapers
   through the same randomized gauge history — one compacting, one
   keeping raw history — and check the engine's
   [AVG(value) GROUP BY ... SPAN w] answers are identical. *)
let compaction_equivalence_prop =
  let open QCheck2 in
  let step =
    Gen.pair (Gen.int_range 400_000 1_600_000) (Gen.float_range 0. 100.)
  in
  let gen = Gen.list_size (Gen.int_range 15 40) step in
  Test.make ~name:"compaction preserves SPAN-w AVG aggregates" ~count:60 gen
    (fun steps ->
      let config =
        {
          test_config with
          Selfmon.Scrape.raw_us = 3_000_000;
          compact_window_us = 2_000_000;
        }
      in
      let make () =
        let registry = Obs.Metrics.create () in
        let g = Obs.Metrics.gauge registry "g" in
        (registry, g, Selfmon.Scrape.create ~config registry)
      in
      let _, ga, compacting = make () in
      let _, gb, raw = make () in
      let now = ref 1_000_000 in
      List.iter
        (fun (gap, v) ->
          Obs.Metrics.set ga v;
          Obs.Metrics.set gb v;
          (* scrape compacts; tick keeps full-resolution history *)
          Selfmon.Scrape.scrape ~now_us:!now compacting;
          Selfmon.Scrape.tick ~now_us:!now raw;
          now := !now + gap)
        steps;
      if Selfmon.Scrape.compactions compacting = 0 then
        Test.fail_report "history never crossed the compaction boundary";
      let q =
        "SELECT name, AVG(value) FROM _metrics WHERE name = 'g' GROUP BY \
         name, SPAN 2000000"
      in
      let answer scraper =
        match
          Tsql.Eval.query ~adaptive:false (Selfmon.Scrape.catalog scraper) q
        with
        | Error msg -> Test.fail_reportf "oracle query failed: %s" msg
        | Ok rel ->
            List.map
              (fun tu ->
                let iv = Relation.Tuple.valid tu in
                ( Chronon.to_int (Interval.start iv),
                  Chronon.to_int (Interval.stop iv),
                  match Relation.Tuple.value tu 1 with
                  | Value.Float v -> v
                  | _ -> nan ))
              (Trel.tuples (Trel.sort_by_time rel))
      in
      let a = answer compacting and b = answer raw in
      if List.length a <> List.length b then
        Test.fail_reportf "segment counts differ: compacted %d, raw %d"
          (List.length a) (List.length b);
      List.iter2
        (fun (s1, e1, v1) (s2, e2, v2) ->
          if s1 <> s2 || e1 <> e2 || not (feq ~eps:1e-9 v1 v2) then
            Test.fail_reportf
              "segments differ: compacted [%d,%d]=%.9g raw [%d,%d]=%.9g" s1
              e1 v1 s2 e2 v2)
        a b;
      true)

(* ------------------------------------------------------------------ *)
(* SLO verdicts through the engine, with a hand-computed oracle        *)
(* ------------------------------------------------------------------ *)

(* Equal ok and error rates against a 0.5 error-ratio bound: observed
   ratio is exactly 1.0 in both windows, burn exactly 2.0 — a breach.
   The p99 objective sees ~100us latencies against a 1ms bound: pass.
   Every number is checkable by hand from the scraped rows. *)
let test_slo_breach_oracle () =
  let registry = Obs.Metrics.create () in
  let h =
    Obs.Metrics.histogram registry ~labels:[ ("kind", "select") ] "lat_us"
  in
  let errs = Obs.Metrics.counter registry "errs_total" in
  let scraper = Selfmon.Scrape.create ~config:test_config registry in
  Selfmon.Scrape.tick ~now_us:1_000_000 scraper;
  Obs.Histogram.observe h 100.;
  Obs.Histogram.observe h 100.;
  Obs.Metrics.add errs 2.;
  Selfmon.Scrape.tick ~now_us:2_000_000 scraper;
  let objectives =
    match
      Obs.Slo.parse
        "errors error_ratio < 0.5 over 2s fast 1s\n\
         lat p99 < 1ms over 2s fast 1s kind select"
    with
    | Ok os -> os
    | Error msg -> Alcotest.failf "parse failed: %s" msg
  in
  match Selfmon.Monitor.evaluate ~now_us:2_000_000 scraper objectives with
  | Error msg -> Alcotest.failf "evaluation failed: %s" msg
  | Ok report -> (
      (match report.Obs.Slo.r_evaluations with
      | [ e_err; e_lat ] ->
          check_float "observed ratio, slow window" 1.
            e_err.Obs.Slo.e_observed_slow;
          check_float "observed ratio, fast window" 1.
            e_err.Obs.Slo.e_observed_fast;
          check_float "burn = observed / threshold" 2. e_err.Obs.Slo.e_slow;
          check_float "fast burn" 2. e_err.Obs.Slo.e_fast;
          Alcotest.(check string) "both windows burning is a breach" "breach"
            (Obs.Slo.verdict_to_string e_err.Obs.Slo.e_verdict);
          Alcotest.(check bool) "worst windows are reported" true
            (List.length e_err.Obs.Slo.e_worst > 0);
          Alcotest.(check string) "cheap latencies pass" "ok"
            (Obs.Slo.verdict_to_string e_lat.Obs.Slo.e_verdict);
          Alcotest.(check bool) "p99 estimate near 100us" true
            (e_lat.Obs.Slo.e_observed_fast >= 100.
            && e_lat.Obs.Slo.e_observed_fast <= 105.)
      | evs ->
          Alcotest.failf "expected 2 evaluations, got %d" (List.length evs));
      (* The verdict metrics round-trip into a registry. *)
      let out = Obs.Metrics.create () in
      Obs.Slo.to_metrics out report;
      Alcotest.(check (option (float 1e-9))) "breach verdict gauge" (Some 2.)
        (Obs.Metrics.value out ~labels:[ ("slo", "errors") ]
           "tempagg_slo_verdict");
      Alcotest.(check (option (float 1e-9))) "pass verdict gauge" (Some 0.)
        (Obs.Metrics.value out ~labels:[ ("slo", "lat") ]
           "tempagg_slo_verdict"))

(* No traffic at all must not page: zero integrals observe 0, pass. *)
let test_slo_no_traffic_passes () =
  let registry = Obs.Metrics.create () in
  let scraper = Selfmon.Scrape.create ~config:test_config registry in
  Selfmon.Scrape.tick ~now_us:1_000_000 scraper;
  Selfmon.Scrape.tick ~now_us:2_000_000 scraper;
  let objectives =
    match Obs.Slo.parse "quiet error_ratio < 0.01 over 2s fast 1s" with
    | Ok os -> os
    | Error msg -> Alcotest.failf "parse failed: %s" msg
  in
  match Selfmon.Monitor.evaluate ~now_us:2_000_000 scraper objectives with
  | Error msg -> Alcotest.failf "evaluation failed: %s" msg
  | Ok report -> (
      match report.Obs.Slo.r_evaluations with
      | [ ev ] ->
          Alcotest.(check string) "no traffic is not an outage" "ok"
            (Obs.Slo.verdict_to_string ev.Obs.Slo.e_verdict)
      | _ -> Alcotest.fail "expected one evaluation")

(* ------------------------------------------------------------------ *)
(* End to end: self-relations over TCP                                 *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let with_server ~config f =
  let config = { config with Net.Server.transport = Net.Server.Tcp 0 } in
  let srv = Net.Server.create ~config (Tsql.Catalog.with_builtins ()) in
  let handle = Domain.spawn (fun () -> Net.Server.run srv) in
  let port = Option.get (Net.Server.port srv) in
  let joined = ref None in
  let report_of () =
    match !joined with
    | Some r -> r
    | None ->
        Net.Server.shutdown srv;
        let r = Domain.join handle in
        joined := Some r;
        r
  in
  Fun.protect
    ~finally:(fun () -> ignore (report_of ()))
    (fun () -> f port report_of)

let test_e2e_self_relations_over_tcp () =
  let objectives =
    match
      Obs.Slo.parse
        "probe error_ratio < 0.5 over 10s fast 1s\n\
         latency p99 < 10s over 10s fast 1s kind select"
    with
    | Ok os -> os
    | Error msg -> Alcotest.failf "parse failed: %s" msg
  in
  let config =
    {
      Net.Server.default_config with
      scrape_every_ms = Some 50;
      slo = objectives;
    }
  in
  with_server ~config (fun port report_of ->
      let c = Net.Client.connect ~port () in
      Fun.protect
        ~finally:(fun () -> Net.Client.close c)
        (fun () ->
          (* Generate some traffic, then give the scraper a few ticks. *)
          for _ = 1 to 5 do
            ignore (Net.Client.request c "SELECT COUNT(name) FROM Employed")
          done;
          Unix.sleepf 0.25;
          (* The server's own telemetry, via an ordinary temporal query. *)
          (match
             Net.Client.request c
               "SELECT AVG(value) FROM _metrics WHERE name = \
                'tempagg_net_queued'"
           with
          | Ok (Net.Protocol.Ok_reply { payload; _ }) ->
              Alcotest.(check bool) "queue-depth history has rows" true
                (List.length payload > 0)
          | _ -> Alcotest.fail "querying _metrics over TCP must succeed");
          (match
             Net.Client.request c "SELECT COUNT(rate) FROM _requests"
           with
          | Ok (Net.Protocol.Ok_reply _) -> ()
          | _ -> Alcotest.fail "querying _requests over TCP must succeed");
          (* SHOW SLO (statement) and SLO (verb) both answer from the
             last evaluation. *)
          (match Net.Client.request c "SHOW SLO" with
          | Ok (Net.Protocol.Ok_reply { payload; _ }) ->
              let text = String.concat "\n" payload in
              Alcotest.(check bool) "SHOW SLO names the objectives" true
                (contains text "probe" && contains text "latency")
          | _ -> Alcotest.fail "SHOW SLO must succeed");
          (match Net.Client.request c "SLO" with
          | Ok (Net.Protocol.Ok_reply { payload; _ }) ->
              Alcotest.(check bool) "SLO verb answers the same report" true
                (List.exists (fun l -> contains l "probe") payload)
          | _ -> Alcotest.fail "the SLO verb must succeed"));
      let report = report_of () in
      Alcotest.(check bool) "scrape ticks were taken" true
        (report.Net.Server.scrapes > 0);
      match report.Net.Server.slo_summary with
      | Some s ->
          Alcotest.(check bool) "summary covers the objectives" true
            (contains s "probe" && contains s "latency");
          let text = Net.Server.report_to_string report in
          Alcotest.(check bool) "report renders scrapes and SLO" true
            (contains text "self-scrape" && contains text "slo:")
      | None -> Alcotest.fail "a server with objectives must report on them")

let () =
  Alcotest.run "selfmon"
    [
      ( "scrape",
        [
          Alcotest.test_case "gauge and counter rate" `Quick
            test_scrape_gauge_and_counter_rate;
          Alcotest.test_case "label rendering" `Quick
            test_scrape_labels_rendered;
          Alcotest.test_case "request rows" `Quick test_scrape_requests_rows;
          Alcotest.test_case "retention" `Quick test_retention_drops_old_rows;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "AVG DURING over _metrics" `Quick
            test_metrics_avg_during_oracle;
          QCheck_alcotest.to_alcotest ~long:false compaction_equivalence_prop;
        ] );
      ( "slo",
        [
          Alcotest.test_case "forced breach matches the hand oracle" `Quick
            test_slo_breach_oracle;
          Alcotest.test_case "no traffic passes" `Quick
            test_slo_no_traffic_passes;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "self-relations over TCP" `Quick
            test_e2e_self_relations_over_tcp;
        ] );
    ]
