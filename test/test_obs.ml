(* Tests for the observability subsystem: log-bucketed histograms
   against a sorted-array oracle, span-tree well-formedness under
   Parallel evaluation, the Prometheus exposition, the stats adapters,
   EXPLAIN ANALYZE profiles (aborted fallback attempts included), and
   the "disarmed tracing is free" overhead bar. *)

open Tempagg

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let check_contains what hay needle =
  if not (contains hay needle) then
    Alcotest.fail (Printf.sprintf "%s: %S not found in:\n%s" what needle hay)

let count_data arr = Array.to_seq (Array.map (fun (iv, _) -> (iv, ())) arr)

let random_data ?(n = 2000) ?(seed = 11) () =
  Workload.Generate.random_intervals
    (Workload.Spec.make ~n ~lifespan:50_000 ~seed ())

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

(* The same nearest-rank the histogram implements, on the raw samples. *)
let oracle_percentile sorted p =
  let n = Array.length sorted in
  let rank = int_of_float ((p *. float_of_int (n - 1)) +. 0.5) in
  sorted.(max 0 (min (n - 1) rank))

let test_histogram_oracle () =
  let gen =
    QCheck.make ~print:QCheck.Print.(list float)
      QCheck.Gen.(list_size (int_range 1 400) (float_range 0.05 2e6))
  in
  let prop values =
    let h = Obs.Histogram.create () in
    List.iter (Obs.Histogram.observe h) values;
    let sorted = Array.of_list values in
    Array.sort compare sorted;
    let n = Array.length sorted in
    let exact_sum = List.fold_left ( +. ) 0. values in
    let gamma = Obs.Histogram.gamma h in
    Obs.Histogram.count h = n
    && abs_float (Obs.Histogram.sum h -. exact_sum)
       <= 1e-9 *. (1. +. abs_float exact_sum)
    && Obs.Histogram.min_value h = sorted.(0)
    && Obs.Histogram.max_value h = sorted.(n - 1)
    && abs_float (Obs.Histogram.mean h -. (exact_sum /. float_of_int n))
       <= 1e-9 *. (1. +. abs_float exact_sum)
    && List.for_all
         (fun p ->
           let v = oracle_percentile sorted p in
           let est = Obs.Histogram.percentile h p in
           (* The estimate is the upper bound of the oracle value's
              bucket, clamped into [min, max]: within a factor gamma
              above the exact answer, never below it by more than the
              clamp. *)
           est >= v -. 1e-9 && est <= (v *. gamma) +. 1e-9)
         [ 0.; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1. ]
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"histogram vs sorted-array oracle" gen
       prop)

let test_histogram_basics () =
  let h = Obs.Histogram.create () in
  Alcotest.(check (float 0.)) "empty percentile" 0. (Obs.Histogram.percentile h 0.5);
  Alcotest.(check int) "empty count" 0 (Obs.Histogram.count h);
  List.iter (Obs.Histogram.observe h) [ 3.; 1.; 2.; 8.; 5. ];
  Alcotest.(check (float 0.)) "p0 = min" 1. (Obs.Histogram.percentile h 0.);
  Alcotest.(check (float 0.)) "p1 = max" 8. (Obs.Histogram.percentile h 1.);
  let last = ref neg_infinity in
  List.iter
    (fun p ->
      let v = Obs.Histogram.percentile h p in
      Alcotest.(check bool) "monotone in p" true (v >= !last);
      last := v)
    [ 0.; 0.25; 0.5; 0.75; 1. ];
  (* Out-of-range values clamp into the edge buckets; exact min and max
     still remember them, and percentiles stay inside [min, max]. *)
  let e = Obs.Histogram.create ~floor:1.0 ~ceiling:100. () in
  Obs.Histogram.observe e 1e-6;
  Obs.Histogram.observe e 1e9;
  Alcotest.(check (float 0.)) "exact min survives clamp" 1e-6
    (Obs.Histogram.min_value e);
  Alcotest.(check (float 0.)) "exact max survives clamp" 1e9
    (Obs.Histogram.max_value e);
  let p50 = Obs.Histogram.percentile e 0.5 in
  Alcotest.(check bool) "clamped percentile in range" true
    (p50 >= 1e-6 && p50 <= 1e9);
  Obs.Histogram.reset h;
  Alcotest.(check int) "reset empties" 0 (Obs.Histogram.count h)

let test_histogram_merge () =
  let a = Obs.Histogram.create () and b = Obs.Histogram.create () in
  List.iter (Obs.Histogram.observe a) [ 1.; 10. ];
  List.iter (Obs.Histogram.observe b) [ 100.; 1000.; 5. ];
  Obs.Histogram.merge_into ~into:a b;
  Alcotest.(check int) "merged count" 5 (Obs.Histogram.count a);
  Alcotest.(check (float 1e-6)) "merged sum" 1116. (Obs.Histogram.sum a);
  Alcotest.(check (float 0.)) "merged max" 1000. (Obs.Histogram.max_value a);
  let other = Obs.Histogram.create ~gamma:2. () in
  Alcotest.(check bool) "shape mismatch raises" true
    (match Obs.Histogram.merge_into ~into:a other with
    | () -> false
    | exception Invalid_argument _ -> true)

(* Merging must not cost percentile accuracy: estimates over a merged
   histogram stay within the same gamma (5%) relative-error bound of
   the sorted oracle over the concatenated samples, exactly as if every
   value had been observed in one histogram. *)
let test_histogram_merge_oracle () =
  let gen =
    QCheck.make
      ~print:QCheck.Print.(pair (list float) (list float))
      QCheck.Gen.(
        pair
          (list_size (int_range 0 300) (float_range 0.05 2e6))
          (list_size (int_range 1 300) (float_range 0.05 2e6)))
  in
  let prop (xs, ys) =
    let a = Obs.Histogram.create () and b = Obs.Histogram.create () in
    List.iter (Obs.Histogram.observe a) xs;
    List.iter (Obs.Histogram.observe b) ys;
    Obs.Histogram.merge_into ~into:a b;
    let sorted = Array.of_list (xs @ ys) in
    Array.sort compare sorted;
    let gamma = Obs.Histogram.gamma a in
    Obs.Histogram.count a = Array.length sorted
    && Obs.Histogram.min_value a = sorted.(0)
    && Obs.Histogram.max_value a = sorted.(Array.length sorted - 1)
    && List.for_all
         (fun p ->
           let v = oracle_percentile sorted p in
           let est = Obs.Histogram.percentile a p in
           est >= v -. 1e-9 && est <= (v *. gamma) +. 1e-9)
         [ 0.; 0.1; 0.5; 0.9; 0.99; 1. ]
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"merge_into vs sorted-array oracle"
       gen prop)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_disarmed_passthrough () =
  Obs.Trace.disarm ();
  Obs.Trace.clear ();
  let r = Obs.Trace.with_span "ignored" (fun () -> 42) in
  Alcotest.(check int) "value passes through" 42 r;
  Alcotest.(check bool) "no open span" true (Obs.Trace.current () = None);
  Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.Trace.spans ()))

(* Arm, evaluate a 4-domain Parallel sweep, and check the span tree:
   one shard span per domain, every recorded parent id resolvable, and
   proper nesting (stack discipline) within each domain's timeline. *)
let test_trace_parallel_span_tree () =
  let data = random_data () in
  Obs.Trace.arm ();
  let tl =
    Engine.eval
      (Engine.Parallel { domains = 4; inner = Engine.Sweep })
      Monoid.count (count_data data)
  in
  Obs.Trace.disarm ();
  ignore (Sys.opaque_identity tl);
  let spans = Obs.Trace.spans () in
  let ids = List.map (fun (s : Obs.Trace.span) -> s.id) spans in
  let shards =
    List.filter (fun (s : Obs.Trace.span) -> s.label = "shard") spans
  in
  Alcotest.(check int) "one span per shard" 4 (List.length shards);
  List.iter
    (fun (s : Obs.Trace.span) ->
      Alcotest.(check bool) "span is closed" true (s.stop_us >= s.start_us);
      match s.parent with
      | None -> ()
      | Some p ->
          Alcotest.(check bool)
            (Printf.sprintf "parent %d of span %d exists" p s.id)
            true (List.mem p ids))
    spans;
  (* Shards hang off the outer eval span even though they ran on
     spawned domains with empty span stacks of their own. *)
  let outer =
    List.find (fun (s : Obs.Trace.span) -> s.label = "eval") spans
  in
  List.iter
    (fun (s : Obs.Trace.span) ->
      Alcotest.(check bool) "shard parented to eval" true
        (s.parent = Some outer.id))
    shards;
  (* Per-domain stack discipline: two spans recorded by one domain are
     either disjoint in time or properly nested, never interleaved. *)
  let by_domain = Hashtbl.create 8 in
  List.iter
    (fun (s : Obs.Trace.span) ->
      Hashtbl.replace by_domain s.domain
        (s :: (Option.value ~default:[] (Hashtbl.find_opt by_domain s.domain))))
    spans;
  Hashtbl.iter
    (fun _ ds ->
      List.iter
        (fun (a : Obs.Trace.span) ->
          List.iter
            (fun (b : Obs.Trace.span) ->
              if a.id <> b.id && a.start_us <= b.start_us then
                Alcotest.(check bool)
                  (Printf.sprintf "spans %d and %d nest or are disjoint" a.id
                     b.id)
                  true
                  (b.start_us >= a.stop_us || b.stop_us <= a.stop_us))
            ds)
        ds)
    by_domain

let test_trace_chrome_export () =
  let data = random_data ~n:500 () in
  Obs.Trace.arm ();
  ignore
    (Engine.eval
       (Engine.Parallel { domains = 2; inner = Engine.Sweep })
       Monoid.count (count_data data));
  Obs.Trace.disarm ();
  let json = Obs.Trace.export_chrome () in
  check_contains "envelope" json "{\"traceEvents\":[";
  check_contains "complete events" json "\"ph\":\"X\"";
  check_contains "thread names" json "\"name\":\"thread_name\"";
  check_contains "shard span" json "\"name\":\"shard\"";
  check_contains "shard attr" json "\"shard\":\"0\"";
  check_contains "parent link" json "\"parent\":";
  Alcotest.(check bool) "closes the envelope" true
    (String.ends_with ~suffix:"]}\n" json);
  (* Re-arming discards the previous recording. *)
  Obs.Trace.arm ();
  Alcotest.(check int) "arm clears" 0 (List.length (Obs.Trace.spans ()));
  Obs.Trace.disarm ()

(* ------------------------------------------------------------------ *)
(* Flight recorder: ring sink and retention policy                     *)
(* ------------------------------------------------------------------ *)

(* The ring records even while disarmed — that is the always-on flight
   recorder — without touching the armed buffer; capacity 0 restores
   the true zero-cost path. *)
let test_trace_ring_always_on () =
  Obs.Trace.disarm ();
  Obs.Trace.clear ();
  Obs.Trace.set_ring_capacity 2048;
  let r = Obs.Trace.with_span ~trace:"ring-t1" "ring-span" (fun () -> 7) in
  Alcotest.(check int) "value passes through" 7 r;
  Alcotest.(check int) "armed buffer untouched" 0
    (List.length (Obs.Trace.spans ()));
  let mine =
    List.filter
      (fun (s : Obs.Trace.span) -> s.trace = "ring-t1")
      (Obs.Trace.recorded ())
  in
  Alcotest.(check int) "ring holds the span" 1 (List.length mine);
  (* Non-lexical spans: opened on one domain, closed (with outcome
     attrs) wherever the work ends. *)
  let id = Obs.Trace.open_span ~trace:"ring-t1" "open-close" in
  Alcotest.(check bool) "live span id" true (id > 0);
  Obs.Trace.close_span ~attrs:[ ("outcome", "ok") ] id;
  Obs.Trace.close_span id;
  (* double close is a no-op *)
  Obs.Trace.close_span 0;
  (* as is the not-recording sentinel *)
  let oc =
    List.filter
      (fun (s : Obs.Trace.span) -> s.label = "open-close")
      (Obs.Trace.recorded ())
  in
  (match oc with
  | [ s ] ->
      Alcotest.(check bool) "closed" true (s.stop_us >= s.start_us);
      Alcotest.(check string) "inherits nothing, keeps its trace" "ring-t1"
        s.trace;
      Alcotest.(check (list (pair string string)))
        "close attrs appended"
        [ ("outcome", "ok") ]
        s.attrs
  | other ->
      Alcotest.fail
        (Printf.sprintf "expected one open-close span, got %d"
           (List.length other)));
  Obs.Trace.set_ring_capacity 0;
  Alcotest.(check bool) "capacity 0 turns recording off" false
    (Obs.Trace.recording ());
  Alcotest.(check int) "open_span disabled" 0 (Obs.Trace.open_span "nope");
  ignore (Obs.Trace.with_span ~trace:"ring-t2" "nope" (fun () -> ()));
  Alcotest.(check int) "nothing recorded" 0
    (List.length (Obs.Trace.recorded ()));
  Obs.Trace.set_ring_capacity 2048

(* Tail-based retention: a pinned trace survives ring wrap while the
   fast-OK noise that wrapped it is what gets evicted. *)
let test_recorder_tail_retention () =
  Obs.Recorder.clear ();
  Obs.Trace.disarm ();
  Obs.Trace.set_ring_capacity 64;
  Obs.Trace.with_span ~trace:"keep-1" "interesting" (fun () ->
      Obs.Trace.with_span "inner" (fun () -> ()));
  Obs.Recorder.pin ~trace:"keep-1" ~reason:"slow";
  (match Obs.Recorder.find "keep-1" with
  | Some p ->
      Alcotest.(check int) "both spans pinned" 2 (List.length p.p_spans);
      Alcotest.(check string) "reason" "slow" p.p_reason
  | None -> Alcotest.fail "pin must capture the trace");
  (* Re-pinning while the spans are still live replaces the entry. *)
  Obs.Recorder.pin ~trace:"keep-1" ~reason:"error";
  (match Obs.Recorder.find "keep-1" with
  | Some p -> Alcotest.(check string) "last reason wins" "error" p.p_reason
  | None -> Alcotest.fail "re-pin must keep the trace");
  Alcotest.(check int) "replaced, not duplicated" 1
    (List.length
       (List.filter
          (fun (p : Obs.Recorder.pinned) -> p.p_trace = "keep-1")
          (Obs.Recorder.pinned ())));
  (* Flood the ring with fast-OK noise until the trace wraps out... *)
  for i = 1 to 256 do
    Obs.Trace.with_span
      ~trace:(Printf.sprintf "noise-%d" i)
      "fast-ok"
      (fun () -> ())
  done;
  let occupancy, dropped = Obs.Trace.ring_stats () in
  Alcotest.(check int) "ring at capacity" 64 occupancy;
  Alcotest.(check bool) "overwrites counted" true (dropped > 0);
  Alcotest.(check bool) "the ring no longer holds the trace" true
    (List.for_all
       (fun (s : Obs.Trace.span) -> s.trace <> "keep-1")
       (Obs.Trace.recorded ()));
  (* ...but the pinned copy survives and the dump reconstructs it. *)
  (match Obs.Recorder.find "keep-1" with
  | Some p -> Alcotest.(check int) "spans retained" 2 (List.length p.p_spans)
  | None -> Alcotest.fail "pinned trace must survive ring wrap");
  check_contains "dump restricted to the trace"
    (Obs.Recorder.dump ~trace:"keep-1" ())
    "\"trace\":\"keep-1\"";
  (* Pinning a trace the rings never saw is a no-op. *)
  Obs.Recorder.pin ~trace:"absent" ~reason:"slow";
  Alcotest.(check bool) "unknown trace not pinned" true
    (Obs.Recorder.find "absent" = None);
  (* The pinned store itself is bounded, FIFO. *)
  Obs.Recorder.clear ();
  Obs.Recorder.configure ~max_pinned:2 ();
  List.iter
    (fun t ->
      Obs.Trace.with_span ~trace:t "s" (fun () -> ());
      Obs.Recorder.pin ~trace:t ~reason:"slow")
    [ "fifo-1"; "fifo-2"; "fifo-3" ];
  Alcotest.(check bool) "oldest evicted" true
    (Obs.Recorder.find "fifo-1" = None);
  Alcotest.(check bool) "newest kept" true
    (Obs.Recorder.find "fifo-3" <> None);
  Alcotest.(check int) "bounded" 2 (List.length (Obs.Recorder.pinned ()));
  (* Occupancy and pressure fold into the scrape registry. *)
  let r = Obs.Metrics.create () in
  Obs.Recorder.to_metrics r;
  Alcotest.(check (option (float 0.)))
    "pinned gauge" (Some 2.)
    (Obs.Metrics.value r "tempagg_recorder_pinned_traces");
  Alcotest.(check bool) "drop counter exposed" true
    (match Obs.Metrics.value r "tempagg_recorder_ring_dropped_total" with
    | Some v -> v > 0.
    | None -> false);
  check_contains "SHOW RECORDER summary" (Obs.Recorder.summary ()) "pinned=2/2";
  check_contains "SHOW TRACE status" (Obs.Recorder.trace_status ())
    "ring-capacity=64";
  Obs.Recorder.configure ~max_pinned:64 ();
  Obs.Recorder.clear ();
  Obs.Trace.set_ring_capacity 2048

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_registry () =
  let r = Obs.Metrics.create () in
  let c = Obs.Metrics.counter r ~help:"h" "c_total" in
  Obs.Metrics.inc c;
  Obs.Metrics.add c 2.5;
  Alcotest.(check (float 0.)) "counter" 3.5 (Obs.Metrics.counter_value c);
  (* Re-registration returns the same cell (adapters refresh in place). *)
  let c' = Obs.Metrics.counter r "c_total" in
  Obs.Metrics.inc c';
  Alcotest.(check (float 0.)) "same cell" 4.5 (Obs.Metrics.counter_value c);
  Alcotest.(check bool) "negative add raises" true
    (match Obs.Metrics.add c (-1.) with
    | () -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "kind clash raises" true
    (match Obs.Metrics.gauge r "c_total" with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "bad name raises" true
    (match Obs.Metrics.counter r "not a name" with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let g = Obs.Metrics.gauge r ~labels:[ ("k", "v") ] "g" in
  Obs.Metrics.set_int g 7;
  Alcotest.(check (option (float 0.)))
    "value lookup" (Some 7.)
    (Obs.Metrics.value r ~labels:[ ("k", "v") ] "g");
  Alcotest.(check (option (float 0.)))
    "missing lookup" None (Obs.Metrics.value r "nope")

let test_metrics_exposition_golden () =
  let r = Obs.Metrics.create () in
  let selects =
    Obs.Metrics.counter r ~help:"Requests served"
      ~labels:[ ("kind", "select") ]
      "app_requests_total"
  in
  Obs.Metrics.inc selects;
  Obs.Metrics.inc selects;
  Obs.Metrics.inc selects;
  Obs.Metrics.inc
    (Obs.Metrics.counter r ~help:"Requests served"
       ~labels:[ ("kind", "delete") ]
       "app_requests_total");
  Obs.Metrics.set (Obs.Metrics.gauge r ~help:"Queue depth" "app_queue_depth") 7.;
  let expected =
    String.concat "\n"
      [
        "# HELP app_queue_depth Queue depth";
        "# TYPE app_queue_depth gauge";
        "app_queue_depth 7";
        "# HELP app_requests_total Requests served";
        "# TYPE app_requests_total counter";
        "app_requests_total{kind=\"delete\"} 1";
        "app_requests_total{kind=\"select\"} 3";
        "";
      ]
  in
  Alcotest.(check string) "golden exposition" expected (Obs.Metrics.expose r)

let test_metrics_histogram_exposition () =
  let r = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram r ~help:"Latency" "lat_us" in
  List.iter (Obs.Histogram.observe h) [ 3.; 100.; 250_000. ];
  let text = Obs.Metrics.expose r in
  check_contains "type line" text "# TYPE lat_us histogram";
  check_contains "+Inf bucket" text "lat_us_bucket{le=\"+Inf\"} 3";
  check_contains "count" text "lat_us_count 3";
  check_contains "sum" text "lat_us_sum 250103";
  (* Bucket counts must be cumulative: extract the trailing integer of
     every _bucket line and check it never decreases. *)
  let counts =
    List.filter_map
      (fun line ->
        if contains line "lat_us_bucket" then
          int_of_string_opt
            (String.sub line
               (String.rindex line ' ' + 1)
               (String.length line - String.rindex line ' ' - 1))
        else None)
      (String.split_on_char '\n' text)
  in
  Alcotest.(check bool) "at least three bucket lines" true
    (List.length counts >= 3);
  ignore
    (List.fold_left
       (fun prev c ->
         Alcotest.(check bool) "cumulative" true (c >= prev);
         c)
       0 counts)

(* Prometheus family semantics: HELP and TYPE belong to the metric name
   (the family), not to one label set.  Exposition must emit each once
   even when several label sets registered separately — and with the
   help string attached to only some of them — and a second label set
   cannot re-register the family under a different kind. *)
let test_metrics_family_semantics () =
  let r = Obs.Metrics.create () in
  Obs.Metrics.inc (Obs.Metrics.counter r ~labels:[ ("kind", "a") ] "fam_total");
  Obs.Metrics.inc
    (Obs.Metrics.counter r ~help:"Family help"
       ~labels:[ ("kind", "b") ]
       "fam_total");
  Obs.Metrics.inc (Obs.Metrics.counter r ~labels:[ ("kind", "c") ] "fam_total");
  let text = Obs.Metrics.expose r in
  let count_lines needle =
    List.length
      (List.filter (fun l -> contains l needle) (String.split_on_char '\n' text))
  in
  Alcotest.(check int) "one HELP line" 1 (count_lines "# HELP fam_total");
  Alcotest.(check int) "one TYPE line" 1 (count_lines "# TYPE fam_total");
  check_contains "family help from any label set" text
    "# HELP fam_total Family help";
  Alcotest.(check int) "all three samples" 3 (count_lines "fam_total{kind=");
  Alcotest.(check bool) "cross-label kind clash raises" true
    (match Obs.Metrics.gauge r ~labels:[ ("kind", "d") ] "fam_total" with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* [write_file] publishes the exposition with a temp-file-plus-rename,
   so a scraper reading the path concurrently sees either the previous
   complete exposition or the new one — never a torn write. *)
let test_metrics_write_file_atomic () =
  let r = Obs.Metrics.create () in
  Obs.Metrics.set (Obs.Metrics.gauge r ~help:"Queue depth" "app_queue_depth") 7.;
  let expected = Obs.Metrics.expose r in
  let path = Filename.temp_file "tempagg-metrics" ".prom" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Sys.remove (path ^ ".tmp") with Sys_error _ -> ())
    (fun () ->
      Obs.Metrics.write_file r path;
      let stop = Atomic.make false in
      let reader =
        Domain.spawn (fun () ->
            let reads = ref 0 and torn = ref 0 in
            while not (Atomic.get stop) do
              let ic = open_in_bin path in
              let text = really_input_string ic (in_channel_length ic) in
              close_in ic;
              incr reads;
              if text <> expected then incr torn
            done;
            (!reads, !torn))
      in
      for _ = 1 to 500 do
        Obs.Metrics.write_file r path
      done;
      Atomic.set stop true;
      let reads, torn = Domain.join reader in
      Alcotest.(check bool) "reader sampled the file" true (reads > 0);
      Alcotest.(check int) "no torn read" 0 torn)

let test_build_info_metrics () =
  let r = Obs.Metrics.create () in
  Obs.Build_info.to_metrics r;
  let text = Obs.Metrics.expose r in
  check_contains "identity gauge" text
    (Printf.sprintf "tempagg_build_info{version=\"%s\"} 1"
       Obs.Build_info.version);
  check_contains "uptime gauge" text "tempagg_uptime_seconds";
  Alcotest.(check bool) "uptime is non-negative" true
    (Obs.Build_info.uptime_seconds () >= 0.);
  (* Refreshing folds in place: still one sample per scrape. *)
  Obs.Build_info.to_metrics r;
  Alcotest.(check int) "one build_info sample" 1
    (List.length
       (List.filter
          (fun l -> contains l "tempagg_build_info{")
          (String.split_on_char '\n' (Obs.Metrics.expose r))))

(* ------------------------------------------------------------------ *)
(* SLO objectives                                                      *)
(* ------------------------------------------------------------------ *)

let test_slo_parse () =
  (match
     Obs.Slo.parse
       "api error_ratio < 0.01 over 1h fast 5m kind select\n\
        # a comment line\n\
        -- another comment\n\n\
        lat p99 < 50ms over 5m fast 1m"
   with
  | Ok [ o1; o2 ] ->
      Alcotest.(check string) "name" "api" o1.Obs.Slo.o_name;
      Alcotest.(check bool) "target" true
        (o1.Obs.Slo.o_target = Obs.Slo.Error_ratio);
      Alcotest.(check (float 0.)) "threshold" 0.01 o1.Obs.Slo.o_threshold;
      Alcotest.(check int) "slow window in us" 3_600_000_000
        o1.Obs.Slo.o_window_us;
      Alcotest.(check int) "fast window in us" 300_000_000
        o1.Obs.Slo.o_fast_us;
      Alcotest.(check (option string)) "kind" (Some "select")
        o1.Obs.Slo.o_kind;
      Alcotest.(check bool) "p99 target" true
        (o2.Obs.Slo.o_target = Obs.Slo.Latency_p 0.99);
      Alcotest.(check (float 0.)) "latency threshold in us" 50_000.
        o2.Obs.Slo.o_threshold
  | Ok os -> Alcotest.failf "expected 2 objectives, got %d" (List.length os)
  | Error msg -> Alcotest.failf "parse failed: %s" msg);
  let rejected text =
    match Obs.Slo.parse text with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "duplicate names rejected" true
    (rejected "a error_ratio < 0.1 over 1m fast 1m\n\
               a error_ratio < 0.2 over 1m fast 1m");
  Alcotest.(check bool) "unknown target rejected" true
    (rejected "a p95 < 1ms over 1m fast 1m");
  Alcotest.(check bool) "fast wider than slow rejected" true
    (rejected "a error_ratio < 0.1 over 1m fast 2m")

(* The compiled queries must follow the TSQL grammar: DURING sits
   between FROM and WHERE, and the kind filter rides the WHERE. *)
let test_slo_queries () =
  match
    Obs.Slo.parse "api error_ratio < 0.01 over 1h fast 5m kind select"
  with
  | Ok [ o ] -> (
      let primary, denominator = Obs.Slo.queries ~window:(5, 9) o in
      Alcotest.(check string) "numerator"
        "SELECT SUM(rate) FROM _requests DURING [5,9] WHERE outcome = \
         'error' AND kind = 'select'"
        primary;
      match denominator with
      | Some d ->
          Alcotest.(check string) "denominator"
            "SELECT SUM(rate) FROM _requests DURING [5,9] WHERE outcome = \
             'ok' AND kind = 'select'"
            d
      | None -> Alcotest.fail "error_ratio needs a denominator query")
  | _ -> Alcotest.fail "parse failed"

(* A regression confined to the fast window: slow burn stays under 1,
   fast burn crosses it — exactly one window burning is a warning.
   Every integral is checkable by hand from the two constant rows. *)
let test_slo_warning_oracle () =
  let source =
    {
      Obs.Slo.query =
        (fun q ->
          let is_sub needle =
            let lh = String.length q and ln = String.length needle in
            let rec go i =
              i + ln <= lh && (String.sub q i ln = needle || go (i + 1))
            in
            go 0
          in
          if is_sub "'error'" then
            (* errors only over the last 2 of 10 seconds *)
            Ok
              [
                {
                  Obs.Slo.row_start = 8_000_000;
                  row_stop = 10_000_000;
                  row_value = 1.;
                };
              ]
          else
            Ok
              [
                {
                  Obs.Slo.row_start = 0;
                  row_stop = 10_000_000;
                  row_value = 1.;
                };
              ]);
    }
  in
  match Obs.Slo.parse "api error_ratio < 0.5 over 10s fast 2s" with
  | Ok objectives -> (
      match Obs.Slo.evaluate ~now_us:10_000_000 source objectives with
      | Ok { Obs.Slo.r_evaluations = [ ev ]; _ } ->
          (* slow: 2s of errors over 10s of oks = 0.2; burn 0.4.
             fast: 2s of errors over 2s of oks = 1.0; burn 2.0. *)
          Alcotest.(check (float 1e-9)) "slow observed" 0.2
            ev.Obs.Slo.e_observed_slow;
          Alcotest.(check (float 1e-9)) "fast observed" 1.
            ev.Obs.Slo.e_observed_fast;
          Alcotest.(check (float 1e-9)) "slow burn" 0.4 ev.Obs.Slo.e_slow;
          Alcotest.(check (float 1e-9)) "fast burn" 2. ev.Obs.Slo.e_fast;
          Alcotest.(check string) "one window burning warns" "warning"
            (Obs.Slo.verdict_to_string ev.Obs.Slo.e_verdict);
          (* The worst fast-width window is the troubled edge. *)
          (match ev.Obs.Slo.e_worst with
          | w :: _ ->
              Alcotest.(check int) "worst window start" 8_000_000
                w.Obs.Slo.wb_start;
              Alcotest.(check (float 1e-9)) "worst window burn" 2.
                w.Obs.Slo.wb_burn
          | [] -> Alcotest.fail "worst windows must not be empty");
          Alcotest.(check int) "warning is an alert" 1
            (List.length (Obs.Slo.alerts { Obs.Slo.r_now_us = 10_000_000;
                                           r_evaluations = [ ev ] }))
      | Ok _ -> Alcotest.fail "expected one evaluation"
      | Error msg -> Alcotest.failf "evaluate failed: %s" msg)
  | Error msg -> Alcotest.failf "parse failed: %s" msg

(* ------------------------------------------------------------------ *)
(* Slowlog: join strategy and request id                               *)
(* ------------------------------------------------------------------ *)

let test_slowlog_join_trace_fields () =
  let log = Obs.Slowlog.create ~threshold_ms:0. () in
  ignore
    (Obs.Slowlog.observe log ~kind:"select"
       ~statement:"SELECT COUNT(*) FROM a JOIN b ON a.vt OVERLAPS b.vt"
       ~elapsed_ms:12.5
       ~join:"sweep-join -> nested-loop-join (fallback)" ~trace:"r3-1" ());
  ignore
    (Obs.Slowlog.observe log ~kind:"select" ~statement:"SELECT 1"
       ~elapsed_ms:1.0 ());
  (match Obs.Slowlog.entries log with
  | [ plain; joined ] ->
      Alcotest.(check (option string))
        "strategy and fallback recorded"
        (Some "sweep-join -> nested-loop-join (fallback)")
        joined.Obs.Slowlog.join;
      Alcotest.(check (option string))
        "request id recorded" (Some "r3-1") joined.Obs.Slowlog.trace;
      Alcotest.(check (option string))
        "absent stays None" None plain.Obs.Slowlog.join
  | other ->
      Alcotest.fail (Printf.sprintf "expected 2 entries, got %d" (List.length other)));
  let json = Obs.Slowlog.to_json log in
  check_contains "join in json" json
    "\"join\": \"sweep-join -> nested-loop-join (fallback)\"";
  check_contains "trace in json" json "\"trace\": \"r3-1\"";
  check_contains "null when absent" json "\"join\": null"

(* ------------------------------------------------------------------ *)
(* Adapters                                                            *)
(* ------------------------------------------------------------------ *)

let test_adapters () =
  let r = Obs.Metrics.create () in
  (* Engine instrumentation. *)
  let inst = Instrument.create () in
  for _ = 1 to 5 do
    Instrument.alloc inst
  done;
  Instrument.free inst;
  Instrument.snapshot_to_metrics r (Instrument.snapshot inst);
  Alcotest.(check (option (float 0.)))
    "allocated nodes" (Some 5.)
    (Obs.Metrics.value r "tempagg_engine_allocated_nodes");
  Alcotest.(check (option (float 0.)))
    "peak live" (Some 5.)
    (Obs.Metrics.value r "tempagg_engine_peak_live_nodes");
  (* Storage I/O counters, refreshed in place on a second fold. *)
  let io = Storage.Io_stats.create () in
  Storage.Io_stats.read_page io;
  Storage.Io_stats.read_page io;
  Storage.Io_stats.retry io;
  Storage.Io_stats.to_metrics r io;
  Storage.Io_stats.read_page io;
  Storage.Io_stats.to_metrics r io;
  Alcotest.(check (option (float 0.)))
    "pages read refreshes" (Some 3.)
    (Obs.Metrics.value r "tempagg_io_pages_read");
  Alcotest.(check (option (float 0.)))
    "retries" (Some 1.)
    (Obs.Metrics.value r "tempagg_io_retries");
  (* Live view counters. *)
  Live.Stats.to_metrics r (Live.Stats.create ());
  check_contains "live gauges exposed" (Obs.Metrics.expose r) "tempagg_live_";
  (* Degradation events count by stage. *)
  Engine.degradations_to_metrics r
    [
      { Engine.stage = "eval"; reason = "a"; action = "retry" };
      { Engine.stage = "eval"; reason = "b"; action = "retry" };
      { Engine.stage = "shard 1"; reason = "c"; action = "inline" };
    ];
  Alcotest.(check (option (float 0.)))
    "eval degradations" (Some 2.)
    (Obs.Metrics.value r
       ~labels:[ ("stage", "eval") ]
       "tempagg_degradations_total")

(* ------------------------------------------------------------------ *)
(* Profile                                                             *)
(* ------------------------------------------------------------------ *)

(* A k=1 tree over random input violates the order check, so the chain
   retries with doubled k and finally concedes to the aggregation tree.
   Every aborted attempt must appear in the profile with its memory
   numbers — the silent-stats-loss fix. *)
let test_profile_covers_aborted_attempts () =
  let data = random_data () in
  let profile = Obs.Profile.create () in
  (match
     Engine.eval_robust ~profile (Engine.Korder_tree { k = 1 }) Monoid.count
       (count_data data)
   with
  | Ok (_, degradations) ->
      Alcotest.(check bool) "degraded" true (degradations <> [])
  | Error e -> Alcotest.fail (Engine.error_to_string e));
  let attempts = Obs.Profile.attempts profile in
  Alcotest.(check bool) "several attempts" true (List.length attempts >= 2);
  Alcotest.(check bool) "a failed attempt is recorded" true
    (List.exists (fun (a : Obs.Profile.attempt) -> a.outcome <> "ok") attempts);
  Alcotest.(check bool) "the last attempt succeeded" true
    ((List.nth attempts (List.length attempts - 1)).outcome = "ok");
  (* Aggregates fold the attempts as sequential retries. *)
  Alcotest.(check int) "allocations sum"
    (List.fold_left
       (fun acc (a : Obs.Profile.attempt) -> acc + a.allocated_nodes)
       0 attempts)
    (Obs.Profile.allocated_nodes profile);
  Alcotest.(check int) "peak is the max"
    (List.fold_left
       (fun acc (a : Obs.Profile.attempt) -> max acc a.peak_bytes)
       0 attempts)
    (Obs.Profile.peak_bytes profile);
  Alcotest.(check bool) "degradations mirrored" true
    (Obs.Profile.degradations profile <> []);
  let text = Obs.Profile.to_string profile in
  check_contains "attempts section" text "attempts:";
  check_contains "memory line" text "memory: allocated_nodes="

(* On a clean single-attempt run the profile's peak_bytes must equal
   what eval_with_stats reports for the same evaluation, exactly.  The
   sweep case runs at the acceptance scale (100k tuples). *)
let test_profile_peak_bytes_exact () =
  List.iter
    (fun (n, algorithm) ->
      let data = random_data ~n ~seed:4 () in
      let profile = Obs.Profile.create () in
      (match
         Engine.eval_robust ~profile algorithm Monoid.count (count_data data)
       with
      | Ok (_, []) -> ()
      | Ok (_, _ :: _) -> Alcotest.fail "unexpected degradation"
      | Error e -> Alcotest.fail (Engine.error_to_string e));
      let _, stats =
        Engine.eval_with_stats algorithm Monoid.count (count_data data)
      in
      Alcotest.(check int)
        (Engine.name algorithm ^ " peak bytes")
        stats.Instrument.peak_bytes
        (Obs.Profile.peak_bytes profile);
      Alcotest.(check int)
        (Engine.name algorithm ^ " allocated")
        stats.Instrument.allocated
        (Obs.Profile.allocated_nodes profile))
    [ (100_000, Engine.Sweep); (3000, Engine.Aggregation_tree) ]

let test_profile_report_fields () =
  let p = Obs.Profile.create () in
  Obs.Profile.set_query p "SELECT COUNT(*) FROM r";
  Obs.Profile.set_plan p ~algorithm:"sweep" ~rationale:"because";
  Obs.Profile.set_k_estimate p 8;
  Obs.Profile.set_tuples p 100;
  Obs.Profile.set_segments p 42;
  Obs.Profile.set_io p ~pages_read:3 ~pages_written:0 ~retries:1
    ~corrupt_pages:0;
  Obs.Profile.add_phase p "evaluate" 1.5;
  Obs.Profile.add_phase p "evaluate" 0.5;
  Obs.Profile.set_total_ms p 2.5;
  let text = Obs.Profile.to_string p in
  List.iter
    (fun needle -> check_contains "report" text needle)
    [
      "query: SELECT COUNT(*) FROM r";
      "plan: sweep";
      "why: because";
      "k estimate: 8";
      "input: 100 tuple(s)";
      "output: 42 segment(s)";
      "evaluate";
      "2.000 ms";
      "io: pages_read=3";
      "total: 2.500 ms";
    ];
  let r = Obs.Metrics.create () in
  Obs.Profile.to_metrics r p;
  Alcotest.(check (option (float 0.)))
    "segments gauge" (Some 42.)
    (Obs.Metrics.value r "tempagg_profile_segments")

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE and the serve loop                                  *)
(* ------------------------------------------------------------------ *)

let test_explain_analyze () =
  (match Tsql.Parser.parse_statement "EXPLAIN ANALYZE SELECT COUNT(Name) FROM Employed" with
  | Ok (Tsql.Ast.Explain_analyze _ as stmt) ->
      Alcotest.(check string) "roundtrip"
        "EXPLAIN ANALYZE SELECT COUNT(Name) FROM Employed"
        (Tsql.Ast.statement_to_string stmt)
  | Ok other ->
      Alcotest.fail ("parsed to " ^ Tsql.Ast.statement_to_string other)
  | Error msg -> Alcotest.fail msg);
  let s = Tsql.Session.create (Tsql.Catalog.with_builtins ()) in
  (match Tsql.Session.exec s "EXPLAIN ANALYZE SELECT COUNT(Name) FROM Employed" with
  | Ok (Tsql.Session.Ack report) ->
      List.iter
        (fun needle -> check_contains "profile report" report needle)
        [ "query:"; "plan:"; "why:"; "attempts:"; "memory: allocated_nodes=";
          "output:"; "total:" ]
  | Ok (Tsql.Session.Rows _) -> Alcotest.fail "expected an Ack"
  | Error msg -> Alcotest.fail msg);
  (* Views answer from materialized timelines, so there is nothing to
     profile: EXPLAIN ANALYZE on one must say so. *)
  (match
     Tsql.Session.exec s
       "CREATE VIEW ea AS SELECT COUNT(Name) FROM Employed GROUP BY INSTANT"
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  match Tsql.Session.exec s "EXPLAIN ANALYZE SELECT COUNT(*) FROM ea" with
  | Ok _ -> Alcotest.fail "EXPLAIN ANALYZE on a view should fail"
  | Error msg -> check_contains "view error" msg "is a view"

let test_serve_metrics () =
  let s = Tsql.Session.create (Tsql.Catalog.with_builtins ()) in
  let buf = Buffer.create 256 in
  let script =
    "SELECT COUNT(Name) FROM Employed; SELECT COUNT(Name) FROM Employed; \
     EXPLAIN ANALYZE SELECT COUNT(Name) FROM Employed; SELECT nope FROM \
     missing;"
  in
  match
    Tsql.Serve.run_script ~out:(Buffer.add_string buf) ~metrics_every:2 s
      script
  with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
      Alcotest.(check int) "ops" 4 report.Tsql.Serve.total;
      Alcotest.(check int) "errors" 1 report.Tsql.Serve.total_errors;
      let ea = List.assoc "explain-analyze" report.Tsql.Serve.per_kind in
      Alcotest.(check int) "explain-analyze counted" 1 ea.Tsql.Serve.ops;
      let selects = List.assoc "select" report.Tsql.Serve.per_kind in
      Alcotest.(check bool) "percentiles ordered" true
        (selects.Tsql.Serve.p50_us <= selects.Tsql.Serve.p99_us
        && selects.Tsql.Serve.p99_us <= selects.Tsql.Serve.max_us);
      (* The periodic dump went through [out]... *)
      let streamed = Buffer.contents buf in
      check_contains "periodic dump" streamed
        "-- metrics after 2 statement(s) --";
      check_contains "latency histogram" streamed "tempagg_serve_latency_us";
      (* ...and the report carries the registry for a final exposition. *)
      let final = Obs.Metrics.expose report.Tsql.Serve.metrics in
      check_contains "error counter" final
        "tempagg_serve_errors_total{kind=\"select\"} 1";
      check_contains "live gauges" final "tempagg_live_";
      let text = Tsql.Serve.report_to_string report in
      check_contains "report header" text "serve: 4 op(s)";
      check_contains "report error count" text "(1 error(s))";
      check_contains "report kind row" text "explain-analyze"

(* ------------------------------------------------------------------ *)
(* Overhead                                                            *)
(* ------------------------------------------------------------------ *)

(* Disarmed tracing on the sweep hot path is one atomic load per eval:
   Engine.eval through the span check must stay within 3% of calling
   Sweep.eval directly.  Paired rounds with a shared rep count cancel
   GC drift; the bar is checked on the best of three tries so one noisy
   CI neighbour cannot fail the suite, but a real regression (a span
   allocated while disarmed, say) fails all three. *)
let test_disarmed_overhead () =
  Obs.Trace.disarm ();
  let data = random_data ~n:4096 ~seed:2 () in
  let bare () = Sweep.eval Monoid.count (count_data data) in
  let routed () = Engine.eval Engine.Sweep Monoid.count (count_data data) in
  let calibrate f =
    let rec go reps =
      let t0 = Sys.time () in
      for _ = 1 to reps do
        ignore (Sys.opaque_identity (f ()))
      done;
      if Sys.time () -. t0 >= 0.05 || reps >= 4096 then reps else go (reps * 2)
    in
    go 1
  in
  let timed reps f =
    let t0 = Sys.time () in
    for _ = 1 to reps do
      ignore (Sys.opaque_identity (f ()))
    done;
    Sys.time () -. t0
  in
  let median_ratio () =
    let reps = calibrate bare in
    let rounds = 5 in
    let ratios =
      Array.init rounds (fun _ ->
          Gc.compact ();
          let tb = timed reps bare in
          let tr = timed reps routed in
          tr /. tb)
    in
    Array.sort compare ratios;
    ratios.(rounds / 2)
  in
  let rec attempt tries best =
    let r = median_ratio () in
    let best = Float.min best r in
    if best < 1.03 then best
    else if tries > 1 then attempt (tries - 1) best
    else best
  in
  let best = attempt 3 infinity in
  if best >= 1.03 then
    Alcotest.fail
      (Printf.sprintf
         "disarmed tracing costs %.1f%% on the sweep hot path (bar: <3%%)"
         ((best -. 1.) *. 100.))

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "vs sorted-array oracle" `Quick
            test_histogram_oracle;
          Alcotest.test_case "basics" `Quick test_histogram_basics;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "merge vs sorted-array oracle" `Quick
            test_histogram_merge_oracle;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disarmed passthrough" `Quick
            test_trace_disarmed_passthrough;
          Alcotest.test_case "parallel span tree" `Quick
            test_trace_parallel_span_tree;
          Alcotest.test_case "chrome export" `Quick test_trace_chrome_export;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "ring always on" `Quick test_trace_ring_always_on;
          Alcotest.test_case "tail retention" `Quick
            test_recorder_tail_retention;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "exposition golden" `Quick
            test_metrics_exposition_golden;
          Alcotest.test_case "histogram exposition" `Quick
            test_metrics_histogram_exposition;
          Alcotest.test_case "family semantics" `Quick
            test_metrics_family_semantics;
          Alcotest.test_case "write_file is atomic" `Quick
            test_metrics_write_file_atomic;
          Alcotest.test_case "build info" `Quick test_build_info_metrics;
          Alcotest.test_case "adapters" `Quick test_adapters;
        ] );
      ( "slo",
        [
          Alcotest.test_case "parse" `Quick test_slo_parse;
          Alcotest.test_case "query compilation" `Quick test_slo_queries;
          Alcotest.test_case "warning matches the hand oracle" `Quick
            test_slo_warning_oracle;
        ] );
      ( "slowlog",
        [
          Alcotest.test_case "join and trace fields" `Quick
            test_slowlog_join_trace_fields;
        ] );
      ( "profile",
        [
          Alcotest.test_case "covers aborted attempts" `Quick
            test_profile_covers_aborted_attempts;
          Alcotest.test_case "peak bytes exact" `Quick
            test_profile_peak_bytes_exact;
          Alcotest.test_case "report fields" `Quick test_profile_report_fields;
        ] );
      ( "tsql",
        [
          Alcotest.test_case "explain analyze" `Quick test_explain_analyze;
          Alcotest.test_case "serve metrics" `Quick test_serve_metrics;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "disarmed tracing < 3%" `Slow
            test_disarmed_overhead;
        ] );
    ]
