(* Tests for the TSQL2 subset: lexer, parser, semantic analysis, and query
   evaluation over the paper's Employed relation (Section 2 / Table 1). *)

open Relation

let catalog = Tsql.Catalog.with_builtins ()

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let run q =
  match Tsql.Eval.query catalog q with
  | Ok rel -> rel
  | Error msg -> Alcotest.fail (q ^ " -> " ^ msg)

let expect_error q fragment =
  match Tsql.Eval.query catalog q with
  | Ok _ -> Alcotest.fail ("expected failure: " ^ q)
  | Error msg ->
      let contains hay needle =
        let lh = String.length hay and ln = String.length needle in
        let rec go i =
          i + ln <= lh && (String.sub hay i ln = needle || go (i + 1))
        in
        go 0
      in
      if not (contains msg fragment) then
        Alcotest.fail (Printf.sprintf "error %S lacks %S" msg fragment)

let row_values rel =
  List.map
    (fun t ->
      ( Array.to_list (Array.map Value.to_string (Tuple.values t)),
        Temporal.Interval.to_string (Tuple.valid t) ))
    (Trel.tuples rel)

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let tokens_of s =
  match Tsql.Lexer.tokenize s with
  | Ok toks -> List.map fst toks
  | Error msg -> Alcotest.fail msg

let test_lexer_keywords_case_insensitive () =
  Alcotest.(check bool) "mixed case" true
    (tokens_of "SeLeCt FrOm" = [ Tsql.Lexer.SELECT; Tsql.Lexer.FROM; Tsql.Lexer.EOF ])

let test_lexer_operators () =
  Alcotest.(check bool) "ops" true
    (tokens_of "= <> < <= > >="
    = Tsql.Lexer.[ EQ; NEQ; LT; LE; GT; GE; EOF ])

let test_lexer_literals () =
  Alcotest.(check bool) "int/float/string" true
    (tokens_of "42 4.5 'it''s'"
    = Tsql.Lexer.[ INT 42; FLOAT 4.5; STRING "it's"; EOF ])

let test_lexer_errors () =
  Alcotest.(check bool) "bad char" true
    (Result.is_error (Tsql.Lexer.tokenize "select @"));
  Alcotest.(check bool) "unterminated string" true
    (Result.is_error (Tsql.Lexer.tokenize "select 'oops"))

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let parse q =
  match Tsql.Parser.parse q with
  | Ok ast -> ast
  | Error msg -> Alcotest.fail (q ^ " -> " ^ msg)

let test_parser_roundtrip () =
  List.iter
    (fun q ->
      let ast = parse q in
      Alcotest.(check string) q q (Tsql.Ast.to_string ast))
    [
      "SELECT COUNT(Name) FROM Employed";
      "SELECT COUNT(*) FROM Employed";
      "SELECT Dept, AVG(Salary) FROM Employed GROUP BY Dept";
      "SELECT SUM(salary) FROM Employed WHERE salary >= 40000 AND name <> 'Bob'";
      "SELECT MIN(salary), MAX(salary) FROM Employed GROUP BY SPAN 10";
      "SELECT COUNT(*) FROM Employed USING ktree(4)";
      "SELECT COUNT(*) FROM Employed USING linked_list";
    ]

let test_parser_semicolon_and_instant () =
  let ast = parse "select count(*) from employed group by instant;" in
  Alcotest.(check bool) "instant grouping" true
    (ast.Tsql.Ast.grouping = Tsql.Ast.By_instant);
  Alcotest.(check string) "relation" "employed" ast.Tsql.Ast.from

let test_parser_errors () =
  List.iter
    (fun (q, fragment) ->
      match Tsql.Parser.parse q with
      | Ok _ -> Alcotest.fail ("expected syntax error: " ^ q)
      | Error msg ->
          let contains hay needle =
            let lh = String.length hay and ln = String.length needle in
            let rec go i =
              i + ln <= lh && (String.sub hay i ln = needle || go (i + 1))
            in
            go 0
          in
          if not (contains msg fragment) then
            Alcotest.fail (Printf.sprintf "%S lacks %S" msg fragment))
    [
      ("COUNT(*) FROM Employed", "expected SELECT");
      ("SELECT FROM Employed", "a column or aggregate");
      ("SELECT COUNT(*) Employed", "expected FROM");
      ("SELECT COUNT(* FROM Employed", "')'");
      ("SELECT SUM(*) FROM Employed", "only COUNT(*)");
      ("SELECT COUNT(*) FROM Employed WHERE x", "a comparison operator");
      ("SELECT COUNT(*) FROM Employed WHERE x = ", "a literal");
      ("SELECT COUNT(*) FROM Employed GROUP BY SPAN 0", "must be positive");
      ("SELECT COUNT(*) FROM Employed GROUP BY SPAN 5, INSTANT",
       "multiple temporal groupings");
      ("SELECT COUNT(*) FROM Employed extra", "end of query");
    ]

(* ------------------------------------------------------------------ *)
(* Semantic analysis                                                   *)
(* ------------------------------------------------------------------ *)

let test_semant_unknown_relation () =
  expect_error "SELECT COUNT(*) FROM Nowhere" "unknown relation"

let test_semant_unknown_column () =
  expect_error "SELECT COUNT(dept) FROM Employed" "unknown column";
  expect_error "SELECT COUNT(*) FROM Employed WHERE dept = 1" "unknown column";
  expect_error "SELECT COUNT(*) FROM Employed GROUP BY dept" "unknown column"

let test_semant_requires_aggregate () =
  expect_error "SELECT name FROM Employed" "at least one aggregate"

let test_semant_bare_column_needs_group_by () =
  expect_error "SELECT name, COUNT(*) FROM Employed" "must appear in GROUP BY"

let test_semant_numeric_aggregates () =
  expect_error "SELECT SUM(name) FROM Employed" "not numeric";
  expect_error "SELECT AVG(name) FROM Employed" "not numeric"

let test_semant_count_needs_no_column () =
  expect_error "SELECT SUM(*) FROM Employed" "only COUNT(*)"

let test_semant_literal_types () =
  expect_error "SELECT COUNT(*) FROM Employed WHERE salary = 'abc'"
    "does not match";
  expect_error "SELECT COUNT(*) FROM Employed WHERE name = 42" "does not match"

let test_semant_unknown_algorithm () =
  expect_error "SELECT COUNT(*) FROM Employed USING btree" "unknown algorithm"

let test_semant_case_insensitive_columns () =
  (* The paper spells it COUNT(Name) over a lowercase schema. *)
  let rel = run "SELECT COUNT(Name) FROM Employed" in
  Alcotest.(check int) "works" 7 (Trel.cardinality rel)

let test_semant_explain_mentions_strategy () =
  match Tsql.Eval.explain catalog "SELECT COUNT(*) FROM Employed" with
  | Error msg -> Alcotest.fail msg
  | Ok text ->
      let contains hay needle =
        let lh = String.length hay and ln = String.length needle in
        let rec go i =
          i + ln <= lh && (String.sub hay i ln = needle || go (i + 1))
        in
        go 0
      in
      (* COUNT is invertible, so the optimizer picks the delta-sweep. *)
      Alcotest.(check bool) "names an algorithm" true (contains text "sweep")

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let test_eval_table1 () =
  (* The paper's Section 5.1 query and Table 1 result. *)
  let rel = run "SELECT COUNT(Name) FROM Employed" in
  Alcotest.(check (list (pair (list string) string)))
    "Table 1"
    [
      ([ "0" ], "[0,6]"); ([ "1" ], "[7,7]"); ([ "2" ], "[8,12]");
      ([ "1" ], "[13,17]"); ([ "3" ], "[18,20]"); ([ "2" ], "[21,21]");
      ([ "1" ], "[22,oo]");
    ]
    (row_values rel)

let test_eval_all_algorithms_same_table1 () =
  List.iter
    (fun algo ->
      let rel =
        run (Printf.sprintf "SELECT COUNT(Name) FROM Employed USING %s" algo)
      in
      Alcotest.(check int) algo 7 (Trel.cardinality rel))
    [ "aggregation_tree"; "linked_list"; "two_scan"; "balanced_tree"; "ktree(3)" ]

let test_eval_where_filters () =
  let rel = run "SELECT COUNT(*) FROM Employed WHERE salary >= 40000" in
  Alcotest.(check (list (pair (list string) string)))
    "well-paid only"
    [
      ([ "0" ], "[0,7]"); ([ "1" ], "[8,17]"); ([ "2" ], "[18,20]");
      ([ "1" ], "[21,oo]");
    ]
    (row_values rel)

let test_eval_group_by_attribute () =
  let rel = run "SELECT name, COUNT(*) FROM Employed GROUP BY name" in
  Alcotest.(check (list (pair (list string) string)))
    "per person, clipped to their lifespan"
    [
      ([ "Karen"; "1" ], "[8,20]");
      ([ "Nathan"; "1" ], "[7,12]");
      ([ "Nathan"; "0" ], "[13,17]");
      ([ "Nathan"; "1" ], "[18,21]");
      ([ "Richard"; "1" ], "[18,oo]");
    ]
    (row_values rel)

let test_eval_avg_null_in_gap () =
  let rel = run "SELECT name, AVG(salary) FROM Employed GROUP BY name" in
  let nathan_gap =
    List.find
      (fun (values, valid) ->
        List.hd values = "Nathan" && valid = "[13,17]")
      (row_values rel)
  in
  Alcotest.(check string) "NULL average in employment gap" ""
    (List.nth (fst nathan_gap) 1)

let test_eval_multiple_aggregates_zipped () =
  let rel = run "SELECT MIN(salary), MAX(salary), COUNT(*) FROM Employed" in
  let at_19 =
    List.find (fun (_, valid) -> valid = "[18,20]") (row_values rel)
  in
  Alcotest.(check (list string)) "min,max,count over [18,20]"
    [ "37000"; "45000"; "3" ] (fst at_19)

let test_eval_sum () =
  let rel = run "SELECT SUM(salary) FROM Employed" in
  let at_19 =
    List.find (fun (_, valid) -> valid = "[18,20]") (row_values rel)
  in
  Alcotest.(check (list string)) "sum over [18,20]" [ "122000" ] (fst at_19)

let test_eval_span_grouping () =
  let rel = run "SELECT COUNT(*) FROM Employed GROUP BY SPAN 10" in
  Alcotest.(check (list (pair (list string) string)))
    "decades"
    [
      ([ "2" ], "[0,9]"); ([ "4" ], "[10,19]"); ([ "3" ], "[20,29]");
      ([ "1" ], "[30,oo]");
    ]
    (row_values rel)

let test_eval_duplicate_aggregates_renamed () =
  let rel = run "SELECT COUNT(*), COUNT(*) FROM Employed" in
  let cols =
    List.map (fun c -> c.Schema.name) (Schema.columns (Trel.schema rel))
  in
  Alcotest.(check (list string)) "unique names" [ "count(*)"; "count(*)_2" ]
    cols

let test_eval_coalescing () =
  (* MAX(salary) is 45000 throughout [8,20]: three constant intervals
     coalesce into one row. *)
  let rel = run "SELECT MAX(salary) FROM Employed" in
  Alcotest.(check bool) "coalesced" true
    (List.exists (fun (_, valid) -> valid = "[8,20]") (row_values rel))

let test_eval_ktree_hint_on_unsorted_fails_cleanly () =
  (* Employed is 3-ordered; hinting k=0 must fail with a clear message,
     not a wrong answer. *)
  expect_error "SELECT COUNT(*) FROM Employed USING ktree(0)" "not k-ordered"

let test_eval_empty_relation () =
  let empty =
    Trel.create (Schema.of_pairs [ ("x", Value.Tint) ]) []
  in
  let cat = Tsql.Catalog.add catalog "Empty" empty in
  match Tsql.Eval.query cat "SELECT COUNT(*) FROM Empty" with
  | Error msg -> Alcotest.fail msg
  | Ok rel ->
      Alcotest.(check (list (pair (list string) string)))
        "single empty segment"
        [ ([ "0" ], "[0,oo]") ]
        (row_values rel)

let test_eval_where_null_comparisons_unknown () =
  let with_null =
    Trel.create Fixtures.employed_schema
      [
        Tuple.make [| Value.Str "Ghost"; Value.Null |]
          (Temporal.Interval.of_ints 0 5);
      ]
  in
  let cat = Tsql.Catalog.add catalog "Ghosts" with_null in
  match Tsql.Eval.query cat "SELECT COUNT(*) FROM Ghosts WHERE salary < 10" with
  | Error msg -> Alcotest.fail msg
  | Ok rel ->
      (* NULL salary: predicate unknown -> tuple filtered out. *)
      Alcotest.(check (list (pair (list string) string)))
        "null filtered" [ ([ "0" ], "[0,oo]") ] (row_values rel)


let test_eval_during_window () =
  let rel = run "SELECT COUNT(Name) FROM Employed DURING [8,20]" in
  Alcotest.(check (list (pair (list string) string)))
    "window [8,20]"
    [ ([ "2" ], "[8,12]"); ([ "1" ], "[13,17]"); ([ "3" ], "[18,20]") ]
    (row_values rel)

let test_eval_during_unbounded () =
  let rel = run "SELECT COUNT(Name) FROM Employed DURING [21,oo]" in
  Alcotest.(check (list (pair (list string) string)))
    "window [21,oo]"
    [ ([ "2" ], "[21,21]"); ([ "1" ], "[22,oo]") ]
    (row_values rel)

let test_eval_during_with_group_by () =
  let rel =
    run "SELECT name, COUNT(*) FROM Employed DURING [8,20] GROUP BY name"
  in
  Alcotest.(check (list (pair (list string) string)))
    "grouped window"
    [
      ([ "Karen"; "1" ], "[8,20]");
      ([ "Nathan"; "1" ], "[8,12]");
      ([ "Nathan"; "0" ], "[13,17]");
      ([ "Nathan"; "1" ], "[18,20]");
      ([ "Richard"; "1" ], "[18,20]");
    ]
    (row_values rel)

let test_during_roundtrip () =
  List.iter
    (fun q ->
      match Tsql.Parser.parse q with
      | Error msg -> Alcotest.fail msg
      | Ok ast -> Alcotest.(check string) q q (Tsql.Ast.to_string ast))
    [
      "SELECT COUNT(*) FROM Employed DURING [8,20]";
      "SELECT COUNT(*) FROM Employed DURING [0,oo]";
    ]

let test_during_syntax_errors () =
  List.iter
    (fun (q, fragment) ->
      match Tsql.Parser.parse q with
      | Ok _ -> Alcotest.fail ("expected error: " ^ q)
      | Error msg ->
          if not (contains msg fragment) then
            Alcotest.fail (Printf.sprintf "%S lacks %S" msg fragment))
    [
      ("SELECT COUNT(*) FROM E DURING [9,5]", "stops before it starts");
      ("SELECT COUNT(*) FROM E DURING [5", "','");
      ("SELECT COUNT(*) FROM E DURING 5,9]", "'['");
      ("SELECT COUNT(*) FROM E DURING [5,x]", "a stop instant or oo");
    ]

let test_catalog_case_insensitive () =
  Alcotest.(check bool) "employed" true
    (Option.is_some (Tsql.Catalog.find catalog "eMpLoYeD"));
  Alcotest.(check (list string)) "names" [ "Employed" ]
    (Tsql.Catalog.names catalog)

let test_pretty_output_shape () =
  let rel = run "SELECT COUNT(Name) FROM Employed" in
  let text = Tsql.Pretty.result_to_string rel in
  let lines = String.split_on_char '\n' text in
  (* rule + header + rule + 7 rows + rule *)
  Alcotest.(check int) "lines" 11 (List.length lines);
  Alcotest.(check bool) "header" true
    (List.exists
       (fun l -> l = "| count(Name) | valid   |")
       lines)

(* ------------------------------------------------------------------ *)
(* Statements: lexing, parsing, and printing                           *)
(* ------------------------------------------------------------------ *)

let test_lexer_statement_keywords () =
  Alcotest.(check bool) "ddl/dml keywords" true
    (tokens_of "create view as refresh drop insert into values delete"
    = Tsql.Lexer.
        [ CREATE; VIEW; AS; REFRESH; DROP; INSERT; INTO; VALUES; DELETE; EOF ])

let test_lexer_line_comments () =
  Alcotest.(check bool) "comment to end of line" true
    (tokens_of "select -- the whole query\n from -- trailing"
    = Tsql.Lexer.[ SELECT; FROM; EOF ])

let parse_statement s =
  match Tsql.Parser.parse_statement s with
  | Ok stmt -> stmt
  | Error msg -> Alcotest.fail (s ^ " -> " ^ msg)

let test_parse_statement_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string)
        s s
        (Tsql.Ast.statement_to_string (parse_statement s)))
    [
      "SELECT COUNT(Name) FROM Employed";
      "CREATE VIEW head_count AS SELECT COUNT(*) FROM Employed";
      "REFRESH VIEW head_count";
      "DROP VIEW head_count";
      "INSERT INTO Employed VALUES ('Ann', 42000) DURING [3,9]";
      "DELETE FROM Employed WHERE Name = 'Ann'";
      "DELETE FROM Employed";
    ]

let test_parse_script () =
  match
    Tsql.Parser.parse_script
      "-- a comment-only line\n\
       CREATE VIEW v AS SELECT COUNT(*) FROM Employed;\n\
       SELECT * FROM v;\n\
       DROP VIEW v"
  with
  | Error msg -> Alcotest.fail msg
  | Ok statements ->
      Alcotest.(check int) "three statements" 3 (List.length statements)

let test_parse_script_empty_statements_skipped () =
  match Tsql.Parser.parse_script ";;SELECT COUNT(*) FROM Employed;;" with
  | Error msg -> Alcotest.fail msg
  | Ok statements -> Alcotest.(check int) "one" 1 (List.length statements)

let test_parse_statement_errors () =
  List.iter
    (fun (s, fragment) ->
      match Tsql.Parser.parse_statement s with
      | Ok _ -> Alcotest.fail ("expected syntax error: " ^ s)
      | Error msg ->
          if not (contains msg fragment) then
            Alcotest.fail (Printf.sprintf "%S lacks %S" msg fragment))
    [
      ("CREATE head AS SELECT COUNT(*) FROM E", "VIEW");
      ("INSERT Employed VALUES (1)", "INTO");
      ("INSERT INTO Employed VALUES (1)", "DURING");
      ("DELETE Employed", "FROM");
    ]

(* ------------------------------------------------------------------ *)
(* Session: live views, writes, and the query cache                    *)
(* ------------------------------------------------------------------ *)

let session () = Tsql.Session.create (Tsql.Catalog.with_builtins ())

let exec s q =
  match Tsql.Session.exec s q with
  | Ok outcome -> outcome
  | Error msg -> Alcotest.fail (q ^ " -> " ^ msg)

let exec_rows s q =
  match exec s q with
  | Tsql.Session.Rows rel -> rel
  | Tsql.Session.Ack msg -> Alcotest.fail (q ^ " -> unexpected ack: " ^ msg)

let exec_err s q =
  match Tsql.Session.exec s q with
  | Ok _ -> Alcotest.fail ("expected failure: " ^ q)
  | Error msg -> msg

let test_session_view_matches_direct_query () =
  let s = session () in
  (match exec s "CREATE VIEW hc AS SELECT COUNT(Name) FROM Employed" with
  | Tsql.Session.Ack msg ->
      Alcotest.(check bool) "incremental" true (contains msg "incremental")
  | Tsql.Session.Rows _ -> Alcotest.fail "expected an ack");
  Alcotest.(check (option string))
    "strategy" (Some "incremental")
    (Tsql.Session.view_strategy s "hc");
  let via_view = exec_rows s "SELECT * FROM hc" in
  let direct = run "SELECT COUNT(Name) FROM Employed" in
  Alcotest.(check bool)
    "same rows" true
    (row_values via_view = row_values direct)

let test_session_insert_updates_view () =
  let s = session () in
  ignore (exec s "CREATE VIEW hc AS SELECT COUNT(Name) FROM Employed");
  ignore (exec s "INSERT INTO Employed VALUES ('Zoe', 60000) DURING [12,18]");
  ignore (exec s "INSERT INTO Employed VALUES ('Ada', 50000) DURING [0,3]");
  let via_view = exec_rows s "SELECT * FROM hc" in
  (* The reference: a fresh batch query over the session's mutated base. *)
  let direct =
    match
      Tsql.Eval.query (Tsql.Session.catalog s) "SELECT COUNT(Name) FROM Employed"
    with
    | Ok rel -> rel
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check bool)
    "view tracks writes" true
    (row_values via_view = row_values direct)

let test_session_delete_updates_view () =
  let s = session () in
  ignore (exec s "CREATE VIEW hc AS SELECT COUNT(Name) FROM Employed");
  let before = exec_rows s "SELECT * FROM hc" in
  ignore (exec s "INSERT INTO Employed VALUES ('Zoe', 60000) DURING [12,18]");
  (match exec s "DELETE FROM Employed WHERE Name = 'Zoe'" with
  | Tsql.Session.Ack msg ->
      Alcotest.(check bool) "one victim" true (contains msg "1")
  | Tsql.Session.Rows _ -> Alcotest.fail "expected an ack");
  let after = exec_rows s "SELECT * FROM hc" in
  Alcotest.(check bool)
    "insert then delete is a no-op" true
    (row_values before = row_values after)

let test_session_view_window_and_min_max () =
  let s = session () in
  ignore (exec s "CREATE VIEW sal AS SELECT MIN(Salary), MAX(Salary) FROM Employed");
  ignore (exec s "DELETE FROM Employed WHERE Name = 'Nathan'");
  let via_view = exec_rows s "SELECT * FROM sal DURING [8,20]" in
  let direct =
    match
      Tsql.Eval.query (Tsql.Session.catalog s)
        "SELECT MIN(Salary), MAX(Salary) FROM Employed DURING [8,20]"
    with
    | Ok rel -> rel
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check bool)
    "min/max survive a delete (lazy rebuild)" true
    (row_values via_view = row_values direct)

let test_session_grouped_view_recomputes () =
  let s = session () in
  (match exec s "CREATE VIEW by_name AS SELECT Name, COUNT(*) FROM Employed GROUP BY Name" with
  | Tsql.Session.Ack msg ->
      Alcotest.(check bool) "recompute" true (contains msg "recompute")
  | Tsql.Session.Rows _ -> Alcotest.fail "expected an ack");
  Alcotest.(check (option string))
    "strategy" (Some "recompute")
    (Tsql.Session.view_strategy s "by_name");
  let before = (Tsql.Session.stats s).Live.Stats.rebuilds in
  ignore (exec s "INSERT INTO Employed VALUES ('Zoe', 60000) DURING [1,2]");
  let rows = exec_rows s "SELECT * FROM by_name" in
  Alcotest.(check bool)
    "stale view rebuilt on read" true
    ((Tsql.Session.stats s).Live.Stats.rebuilds > before);
  Alcotest.(check bool)
    "new group present" true
    (List.exists (fun (vs, _) -> List.mem "Zoe" vs) (row_values rows))

let test_session_cache_hits_and_precise_invalidation () =
  let s = session () in
  ignore (exec s "CREATE VIEW hc AS SELECT COUNT(Name) FROM Employed");
  let q = "SELECT * FROM hc DURING [0,20]" in
  ignore (exec_rows s q);
  let stats = Tsql.Session.stats s in
  let hits0 = stats.Live.Stats.cache_hits in
  ignore (exec_rows s q);
  Alcotest.(check int) "second read hits" (hits0 + 1) stats.Live.Stats.cache_hits;
  (* A write entirely outside the cached window leaves the entry alive... *)
  ignore (exec s "INSERT INTO Employed VALUES ('Far', 1000) DURING [50,60]");
  ignore (exec_rows s q);
  Alcotest.(check int)
    "disjoint write keeps the entry" (hits0 + 2) stats.Live.Stats.cache_hits;
  (* ...but an overlapping write drops exactly that entry. *)
  let invalidations0 = stats.Live.Stats.cache_invalidations in
  ignore (exec s "INSERT INTO Employed VALUES ('Near', 1000) DURING [15,25]");
  Alcotest.(check bool)
    "overlapping write invalidates" true
    (stats.Live.Stats.cache_invalidations > invalidations0);
  ignore (exec_rows s q);
  Alcotest.(check int)
    "post-invalidation read misses" (hits0 + 2) stats.Live.Stats.cache_hits;
  (* The recomputed entry is correct (compare against a fresh query). *)
  let via_view = exec_rows s q in
  let direct =
    match
      Tsql.Eval.query (Tsql.Session.catalog s)
        "SELECT COUNT(Name) FROM Employed DURING [0,20]"
    with
    | Ok rel -> rel
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check bool)
    "cached result correct" true
    (row_values via_view = row_values direct)

let test_session_refresh_and_drop () =
  let s = session () in
  ignore (exec s "CREATE VIEW hc AS SELECT COUNT(*) FROM Employed");
  let v0 = Tsql.Session.view_version s "hc" in
  (match exec s "REFRESH VIEW hc" with
  | Tsql.Session.Ack _ -> ()
  | Tsql.Session.Rows _ -> Alcotest.fail "expected an ack");
  Alcotest.(check bool)
    "refresh bumps the version" true
    (Tsql.Session.view_version s "hc" > v0);
  ignore (exec s "DROP VIEW hc");
  Alcotest.(check (list string)) "gone" [] (Tsql.Session.view_names s);
  ignore (exec_err s "SELECT * FROM hc")

let test_session_rejections () =
  let s = session () in
  ignore (exec s "CREATE VIEW hc AS SELECT COUNT(*) FROM Employed");
  Alcotest.(check bool) "star on a base table" true
    (contains (exec_err s "SELECT * FROM Employed") "view");
  Alcotest.(check bool) "insert into a view" true
    (contains
       (exec_err s "INSERT INTO hc VALUES ('x', 1) DURING [0,1]")
       "view");
  Alcotest.(check bool) "view over a view" true
    (contains (exec_err s "CREATE VIEW h2 AS SELECT COUNT(*) FROM hc") "view");
  Alcotest.(check bool) "clashing base name" true
    (contains
       (exec_err s "CREATE VIEW Employed AS SELECT COUNT(*) FROM Employed")
       "base relation");
  Alcotest.(check bool) "refresh unknown" true
    (contains (exec_err s "REFRESH VIEW nope") "nope");
  Alcotest.(check bool)
    "grouped select against a view" true
    (String.length (exec_err s "SELECT Name, COUNT(*) FROM hc GROUP BY Name")
    > 0)

let test_show_trace_and_recorder () =
  (match Tsql.Parser.parse_statement "show trace" with
  | Ok Tsql.Ast.Show_trace -> ()
  | Ok other ->
      Alcotest.fail ("parsed to " ^ Tsql.Ast.statement_to_string other)
  | Error msg -> Alcotest.fail msg);
  (match Tsql.Parser.parse_statement "SHOW RECORDER;" with
  | Ok Tsql.Ast.Show_recorder -> ()
  | Ok other ->
      Alcotest.fail ("parsed to " ^ Tsql.Ast.statement_to_string other)
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check string)
    "canonical form" "SHOW TRACE"
    (Tsql.Ast.statement_to_string Tsql.Ast.Show_trace);
  Alcotest.(check string)
    "canonical form" "SHOW RECORDER"
    (Tsql.Ast.statement_to_string Tsql.Ast.Show_recorder);
  (match Tsql.Parser.parse_statement "SHOW nonsense" with
  | Ok _ -> Alcotest.fail "unknown SHOW must fail"
  | Error msg ->
      Alcotest.(check bool) "error lists the new forms" true
        (contains msg "TRACE" && contains msg "RECORDER"));
  let s = session () in
  (match exec s "SHOW TRACE" with
  | Tsql.Session.Ack msg ->
      Alcotest.(check bool) "status line" true
        (contains msg "trace:" && contains msg "ring-capacity=")
  | Tsql.Session.Rows _ -> Alcotest.fail "expected an ack");
  match exec s "SHOW RECORDER" with
  | Tsql.Session.Ack msg ->
      Alcotest.(check bool) "summary line" true
        (contains msg "recorder:" && contains msg "pinned=")
  | Tsql.Session.Rows _ -> Alcotest.fail "expected an ack"

(* ------------------------------------------------------------------ *)
(* Serve                                                               *)
(* ------------------------------------------------------------------ *)

let test_serve_reports_latencies () =
  let s = session () in
  let sink = Buffer.create 256 in
  match
    Tsql.Serve.run_script ~echo:true
      ~out:(Buffer.add_string sink)
      s
      "CREATE VIEW hc AS SELECT COUNT(*) FROM Employed;\n\
       SELECT * FROM hc;\n\
       INSERT INTO Employed VALUES ('Zoe', 1) DURING [2,4];\n\
       SELECT * FROM hc;\n\
       SELECT * FROM nonexistent;\n\
       DROP VIEW hc"
  with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
      Alcotest.(check int) "ops" 6 report.Tsql.Serve.total;
      Alcotest.(check int) "one error" 1 report.Tsql.Serve.total_errors;
      let selects = List.assoc "select" report.Tsql.Serve.per_kind in
      Alcotest.(check int) "selects" 3 selects.Tsql.Serve.ops;
      Alcotest.(check int) "select errors" 1 selects.Tsql.Serve.errors;
      Alcotest.(check bool)
        "percentiles ordered" true
        (selects.Tsql.Serve.p50_us <= selects.Tsql.Serve.p99_us
        && selects.Tsql.Serve.p99_us <= selects.Tsql.Serve.max_us);
      let text = Tsql.Serve.report_to_string report in
      Alcotest.(check bool) "report mentions kinds" true
        (contains text "create-view" && contains text "p99-us");
      Alcotest.(check bool) "echo shows error" true
        (contains (Buffer.contents sink) "error:")

let test_serve_parse_error () =
  let s = session () in
  Alcotest.(check bool)
    "bad script is an Error" true
    (Result.is_error (Tsql.Serve.run_script s "SELECT FROM ;"))

let quick name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "tsql"
    [
      ( "lexer",
        [
          quick "keywords case-insensitive" test_lexer_keywords_case_insensitive;
          quick "operators" test_lexer_operators;
          quick "literals" test_lexer_literals;
          quick "errors" test_lexer_errors;
        ] );
      ( "parser",
        [
          quick "roundtrip" test_parser_roundtrip;
          quick "semicolon and INSTANT" test_parser_semicolon_and_instant;
          quick "syntax errors" test_parser_errors;
        ] );
      ( "semant",
        [
          quick "unknown relation" test_semant_unknown_relation;
          quick "unknown column" test_semant_unknown_column;
          quick "requires an aggregate" test_semant_requires_aggregate;
          quick "bare column needs GROUP BY"
            test_semant_bare_column_needs_group_by;
          quick "numeric aggregates" test_semant_numeric_aggregates;
          quick "star only for COUNT" test_semant_count_needs_no_column;
          quick "literal types" test_semant_literal_types;
          quick "unknown algorithm" test_semant_unknown_algorithm;
          quick "case-insensitive columns" test_semant_case_insensitive_columns;
          quick "explain mentions strategy" test_semant_explain_mentions_strategy;
        ] );
      ( "eval",
        [
          quick "Table 1" test_eval_table1;
          quick "all algorithms agree" test_eval_all_algorithms_same_table1;
          quick "WHERE filters" test_eval_where_filters;
          quick "GROUP BY attribute" test_eval_group_by_attribute;
          quick "NULL average in gaps" test_eval_avg_null_in_gap;
          quick "multiple aggregates zipped" test_eval_multiple_aggregates_zipped;
          quick "SUM" test_eval_sum;
          quick "GROUP BY SPAN" test_eval_span_grouping;
          quick "duplicate aggregates renamed"
            test_eval_duplicate_aggregates_renamed;
          quick "results coalesced" test_eval_coalescing;
          quick "bad ktree hint fails cleanly"
            test_eval_ktree_hint_on_unsorted_fails_cleanly;
          quick "DURING window" test_eval_during_window;
          quick "DURING unbounded" test_eval_during_unbounded;
          quick "DURING with GROUP BY" test_eval_during_with_group_by;
          quick "DURING roundtrip" test_during_roundtrip;
          quick "DURING syntax errors" test_during_syntax_errors;
          quick "empty relation" test_eval_empty_relation;
          quick "NULL comparisons are unknown"
            test_eval_where_null_comparisons_unknown;
          quick "catalog case-insensitive" test_catalog_case_insensitive;
          quick "pretty output" test_pretty_output_shape;
        ] );
      ( "statements",
        [
          quick "ddl/dml keywords" test_lexer_statement_keywords;
          quick "line comments" test_lexer_line_comments;
          quick "statement roundtrip" test_parse_statement_roundtrip;
          quick "script" test_parse_script;
          quick "empty statements skipped"
            test_parse_script_empty_statements_skipped;
          quick "statement syntax errors" test_parse_statement_errors;
        ] );
      ( "session",
        [
          quick "view matches direct query" test_session_view_matches_direct_query;
          quick "insert updates view" test_session_insert_updates_view;
          quick "delete updates view" test_session_delete_updates_view;
          quick "min/max across deletes" test_session_view_window_and_min_max;
          quick "grouped views recompute" test_session_grouped_view_recomputes;
          quick "cache hits and precise invalidation"
            test_session_cache_hits_and_precise_invalidation;
          quick "refresh and drop" test_session_refresh_and_drop;
          quick "rejections" test_session_rejections;
          quick "SHOW TRACE / SHOW RECORDER" test_show_trace_and_recorder;
        ] );
      ( "serve",
        [
          quick "latency report" test_serve_reports_latencies;
          quick "parse errors rejected" test_serve_parse_error;
        ] );
    ]
