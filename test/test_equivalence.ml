(* Property tests: every algorithm computes exactly the same timeline as
   the brute-force reference, on random inputs, for several aggregates.
   The segment boundaries must agree exactly (not just up to coalescing):
   every algorithm splits at precisely the unique interval endpoints. *)

open Temporal
open Tempagg

let c = Chronon.of_int
let iv = Interval.of_ints

(* Random data sets over a small domain so brute force stays cheap and
   collisions between endpoints are common (the interesting edge cases). *)
let gen_data ?(max_time = 120) ?(max_len = 30) () =
  QCheck2.Gen.(
    let gen_tuple =
      let* s = int_bound (max_time - 1) in
      let* len = int_bound max_len in
      let* unbounded = map (fun n -> n = 0) (int_bound 19) in
      let* v = int_range 1 100 in
      if unbounded then return (Interval.from (c s), v)
      else return (iv s (min (max_time - 1) (s + len)), v)
    in
    list_size (int_range 0 40) gen_tuple)

let print_data data =
  String.concat "; "
    (List.map
       (fun (ivl, v) -> Printf.sprintf "%s=%d" (Interval.to_string ivl) v)
       data)

let sort_data data =
  List.sort (fun (a, _) (b, _) -> Interval.compare a b) data

(* k of a data list, for feeding the k-ordered tree raw input. *)
let k_of data =
  Ordering.Korder.k_of
    ~compare:(fun (a, _) (b, _) -> Interval.compare a b)
    (Array.of_list data)

let algorithms_against_reference ~name ~monoid ~equal_r =
  QCheck2.Test.make ~name ~count:300 ~print:print_data (gen_data ())
    (fun data ->
      let expected = Reference.eval monoid data in
      let same tl = Timeline.equal equal_r expected tl in
      let seq () = List.to_seq data in
      same (Agg_tree.eval monoid (seq ()))
      && same (Linked_list.eval monoid (seq ()))
      && same (Two_scan.eval monoid (seq ()))
      && same (Balanced_tree.eval monoid (seq ()))
      && same (Korder_tree.eval ~k:(k_of data) monoid (seq ()))
      && same (Korder_tree.eval ~k:1 monoid (List.to_seq (sort_data data)))
      (* The sweep exercises both of its paths here: delta summation for
         the invertible monoids, the flat segment tree for min/max. *)
      && same (Sweep.eval monoid (seq ()))
      && same
           (Engine.eval
              (Engine.Parallel { domains = 2; inner = Engine.Sweep })
              monoid (seq ()))
      && same
           (Engine.eval
              (Engine.Parallel { domains = 3; inner = Engine.Aggregation_tree })
              monoid (seq ())))

let count_vs_reference =
  algorithms_against_reference ~name:"count = reference (all algorithms)"
    ~monoid:Monoid.count ~equal_r:Int.equal

let sum_vs_reference =
  algorithms_against_reference ~name:"sum = reference (all algorithms)"
    ~monoid:Monoid.sum_int ~equal_r:Int.equal

let min_vs_reference =
  algorithms_against_reference ~name:"min = reference (all algorithms)"
    ~monoid:Monoid.min_int ~equal_r:(Option.equal Int.equal)

let max_vs_reference =
  algorithms_against_reference ~name:"max = reference (all algorithms)"
    ~monoid:Monoid.max_int ~equal_r:(Option.equal Int.equal)

let avg_vs_reference =
  algorithms_against_reference ~name:"avg = reference (all algorithms)"
    ~monoid:Monoid.avg_int
    ~equal_r:
      (Option.equal (fun a b -> Float.abs (a -. b) <= 1e-9 *. Float.max 1. (Float.abs a)))

(* Timeline structural invariants of every algorithm's output. *)
let timeline_invariants =
  QCheck2.Test.make ~name:"outputs partition [origin,horizon] in order"
    ~count:300 ~print:print_data (gen_data ())
    (fun data ->
      List.for_all
        (fun algorithm ->
          let input =
            match algorithm with
            | Engine.Korder_tree _ -> sort_data data
            | _ -> data
          in
          let tl = Engine.eval algorithm Monoid.count (List.to_seq input) in
          (* of_list re-validates contiguity; cover must be [0,oo]. *)
          let tl' = Timeline.of_list (Timeline.to_list tl) in
          Interval.equal (Timeline.cover tl') Interval.full)
        Engine.all)

(* The number of segments equals the number of constant intervals: one per
   unique boundary point. *)
let segment_count_matches_boundaries =
  QCheck2.Test.make ~name:"segment count = unique boundaries" ~count:300
    ~print:print_data (gen_data ())
    (fun data ->
      let tl = Agg_tree.eval Monoid.count (List.to_seq data) in
      let boundaries =
        List.concat_map
          (fun (ivl, _) ->
            let s = Interval.start ivl and e = Interval.stop ivl in
            let bs = if Chronon.( > ) s Chronon.origin then [ s ] else [] in
            if Chronon.is_finite e then Chronon.succ e :: bs else bs)
          data
        |> List.cons Chronon.origin
        |> List.sort_uniq Chronon.compare
      in
      Timeline.length tl = List.length boundaries)

(* value_at of the result equals the reference at random probe points. *)
let pointwise_probes =
  QCheck2.Test.make ~name:"pointwise value_at = reference" ~count:300
    ~print:(fun (data, probe) ->
      Printf.sprintf "%s @ %d" (print_data data) probe)
    QCheck2.Gen.(pair (gen_data ()) (int_bound 200))
    (fun (data, probe) ->
      let tl = Agg_tree.eval Monoid.count (List.to_seq data) in
      Timeline.value_at tl (c probe)
      = Some (Reference.value_at Monoid.count data (c probe)))

(* Insertion order never matters for the tree algorithms. *)
let insertion_order_irrelevant =
  QCheck2.Test.make ~name:"insertion order irrelevant (agg tree)" ~count:200
    ~print:print_data (gen_data ())
    (fun data ->
      let forward = Agg_tree.eval Monoid.count (List.to_seq data) in
      let backward =
        Agg_tree.eval Monoid.count (List.to_seq (List.rev data))
      in
      Timeline.equal Int.equal forward backward)

(* Splitting the input stream across an intermediate [result] call does not
   disturb the tree (result is non-destructive). *)
let result_is_repeatable =
  QCheck2.Test.make ~name:"Agg_tree.result is non-destructive" ~count:200
    ~print:print_data (gen_data ())
    (fun data ->
      let t = Agg_tree.create Monoid.count in
      Agg_tree.insert_all t (List.to_seq data);
      let once = Agg_tree.result t in
      let twice = Agg_tree.result t in
      Timeline.equal Int.equal once twice)

(* Korder with any k >= true disorder matches; and streaming emit +
   remainder = full result. *)
let korder_any_sufficient_k =
  QCheck2.Test.make ~name:"ktree correct for any sufficient k" ~count:200
    ~print:(fun (data, extra) ->
      Printf.sprintf "%s k+%d" (print_data data) extra)
    QCheck2.Gen.(pair (gen_data ()) (int_bound 5))
    (fun (data, extra) ->
      let k = k_of data + extra in
      let expected = Reference.eval Monoid.count data in
      Timeline.equal Int.equal expected
        (Korder_tree.eval ~k Monoid.count (List.to_seq data)))

(* Span grouping agrees with quantize-then-reference. *)
let span_vs_reference =
  QCheck2.Test.make ~name:"span grouping = reference on quantized input"
    ~count:200
    ~print:(fun (data, len) ->
      Printf.sprintf "%s span=%d" (print_data data) len)
    QCheck2.Gen.(pair (gen_data ()) (int_range 1 40))
    (fun (data, len) ->
      let granule = Granule.make len in
      let tl = Span.eval ~granule Monoid.count (List.to_seq data) in
      (* Every instant's value must equal the count of tuples overlapping
         the instant's span. *)
      List.for_all
        (fun probe ->
          let p = c probe in
          let span = Granule.span_of granule (Granule.index_of granule p) in
          let expected =
            List.length
              (List.filter (fun (ivl, _) -> Interval.overlaps ivl span) data)
          in
          Timeline.value_at tl p = Some expected)
        [ 0; 1; 7; 50; 119; 200 ])

(* Timeline.merge is the divide-and-conquer combination step: it must be
   a commutative-monoid operation on timelines (up to refinement of the
   segment boundaries) and agree pointwise with combining value_at. *)

let timeline_of data = Agg_tree.eval Monoid.count (List.to_seq data)

let gen_three =
  QCheck2.Gen.(triple (gen_data ()) (gen_data ()) (gen_data ()))

let print_three (a, b, c) =
  Printf.sprintf "%s | %s | %s" (print_data a) (print_data b) (print_data c)

let merge_associative_commutative =
  QCheck2.Test.make ~name:"Timeline.merge associative and commutative"
    ~count:200 ~print:print_three gen_three
    (fun (da, db, dc) ->
      let a = timeline_of da and b = timeline_of db and c = timeline_of dc in
      let merge = Timeline.merge ~combine:( + ) in
      Timeline.equal Int.equal (merge (merge a b) c) (merge a (merge b c))
      && Timeline.equal Int.equal (merge a b) (merge b a))

let merge_identity =
  QCheck2.Test.make ~name:"Timeline.merge: empty-state timeline is identity"
    ~count:200 ~print:print_data (gen_data ())
    (fun data ->
      let a = timeline_of data in
      let identity = Timeline.singleton Interval.full 0 in
      (* Identity up to refinement: merging splits no values, so
         coalescing recovers the original function of time. *)
      Timeline.equivalent Int.equal
        (Timeline.merge ~combine:( + ) a identity)
        a)

let merge_preserves_cover =
  QCheck2.Test.make ~name:"Timeline.merge preserves the cover" ~count:200
    ~print:(fun (a, b) ->
      Printf.sprintf "%s | %s" (print_data a) (print_data b))
    QCheck2.Gen.(pair (gen_data ()) (gen_data ()))
    (fun (da, db) ->
      let a = timeline_of da and b = timeline_of db in
      let merged = Timeline.merge ~combine:( + ) a b in
      Interval.equal (Timeline.cover merged) (Timeline.cover a))

let merge_pointwise =
  QCheck2.Test.make ~name:"Timeline.merge agrees with pointwise value_at"
    ~count:200
    ~print:(fun ((a, b), probe) ->
      Printf.sprintf "%s | %s @ %d" (print_data a) (print_data b) probe)
    QCheck2.Gen.(pair (pair (gen_data ()) (gen_data ())) (int_bound 200))
    (fun ((da, db), probe) ->
      let a = timeline_of da and b = timeline_of db in
      let merged = Timeline.merge ~combine:( + ) a b in
      let p = c probe in
      Timeline.value_at merged p
      = Option.bind (Timeline.value_at a p) (fun va ->
            Option.map (fun vb -> va + vb) (Timeline.value_at b p)))

(* With an understated k the algorithm must never return a wrong answer
   silently: it either still happens to be correct (gc never overtook the
   disorder) or raises Order_violation. *)
let korder_understated_k_safe =
  QCheck2.Test.make ~name:"ktree with understated k: correct or raises"
    ~count:300 ~print:print_data (gen_data ())
    (fun data ->
      let k = k_of data in
      let k' = Stdlib.max 0 (k / 2) in
      let expected = Reference.eval Monoid.count data in
      match Korder_tree.eval ~k:k' Monoid.count (List.to_seq data) with
      | tl -> Timeline.equal Int.equal expected tl
      | exception Korder_tree.Order_violation _ -> true)

let () =
  Alcotest.run "equivalence"
    [
      ( "vs-reference",
        List.map
          (QCheck_alcotest.to_alcotest ~long:false)
          [
            count_vs_reference;
            sum_vs_reference;
            min_vs_reference;
            max_vs_reference;
            avg_vs_reference;
          ] );
      ( "invariants",
        List.map
          (QCheck_alcotest.to_alcotest ~long:false)
          [
            timeline_invariants;
            segment_count_matches_boundaries;
            pointwise_probes;
            insertion_order_irrelevant;
            result_is_repeatable;
            korder_any_sufficient_k;
            korder_understated_k_safe;
            span_vs_reference;
          ] );
      ( "merge",
        List.map
          (QCheck_alcotest.to_alcotest ~long:false)
          [
            merge_associative_commutative;
            merge_identity;
            merge_preserves_cover;
            merge_pointwise;
          ] );
    ]
