(* Tests for the synthetic workload generators (paper, Section 6 and
   Table 3) and the deterministic PRNG they draw from. *)

open Temporal
open Workload

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  Alcotest.(check bool) "different" true
    (Prng.next_int64 a <> Prng.next_int64 b)

let test_prng_copy_forks_stream () =
  let a = Prng.create ~seed:9 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "same from fork" (Prng.next_int64 a) (Prng.next_int64 b)

let test_prng_bounds () =
  let p = Prng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let x = Prng.int_bounded p 7 in
    Alcotest.(check bool) "in [0,7)" true (x >= 0 && x < 7)
  done;
  for _ = 1 to 10_000 do
    let x = Prng.int_in p ~lo:3 ~hi:9 in
    Alcotest.(check bool) "in [3,9]" true (x >= 3 && x <= 9)
  done

let test_prng_bounds_validate () =
  let p = Prng.create ~seed:5 in
  Alcotest.check_raises "bound"
    (Invalid_argument "Prng.int_bounded: bound must be positive") (fun () ->
      ignore (Prng.int_bounded p 0));
  Alcotest.check_raises "range" (Invalid_argument "Prng.int_in: empty range")
    (fun () -> ignore (Prng.int_in p ~lo:5 ~hi:4))

let test_prng_uniformity_rough () =
  (* chi-square-lite: each of 10 buckets within 20% of expectation. *)
  let p = Prng.create ~seed:77 in
  let buckets = Array.make 10 0 in
  let draws = 100_000 in
  for _ = 1 to draws do
    let b = Prng.int_bounded p 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i count ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d (%d)" i count)
        true
        (abs (count - (draws / 10)) < draws / 50))
    buckets

let test_prng_float_unit () =
  let p = Prng.create ~seed:123 in
  let sum = ref 0. in
  for _ = 1 to 10_000 do
    let f = Prng.float_unit p in
    Alcotest.(check bool) "in [0,1)" true (f >= 0. && f < 1.);
    sum := !sum +. f
  done;
  Alcotest.(check bool) "mean near 0.5" true
    (Float.abs ((!sum /. 10_000.) -. 0.5) < 0.02)

(* ------------------------------------------------------------------ *)
(* Spec                                                                *)
(* ------------------------------------------------------------------ *)

let test_spec_defaults_match_paper () =
  let s = Spec.make ~n:1024 () in
  Alcotest.(check int) "lifespan" 1_000_000 s.Spec.lifespan;
  Alcotest.(check int) "short min" 1 s.Spec.short_min;
  Alcotest.(check int) "short max" 1000 s.Spec.short_max;
  Alcotest.(check (float 0.)) "long min" 0.2 s.Spec.long_min_fraction;
  Alcotest.(check (float 0.)) "long max" 0.8 s.Spec.long_max_fraction;
  Alcotest.(check (float 0.)) "no long-lived by default" 0.
    s.Spec.long_lived_fraction

let test_spec_table3_values () =
  Alcotest.(check (list int)) "sizes 1K..64K"
    [ 1024; 2048; 4096; 8192; 16384; 32768; 65536 ]
    Spec.table3_sizes;
  Alcotest.(check (list (float 0.))) "long-lived" [ 0.; 0.4; 0.8 ]
    Spec.table3_long_lived;
  Alcotest.(check (list int)) "k" [ 4; 40; 400 ] Spec.table3_k;
  Alcotest.(check (list (float 0.))) "percentages" [ 0.02; 0.08; 0.14 ]
    Spec.table3_percentages;
  Alcotest.(check int) "tuple bytes" 128 Spec.bytes_per_tuple

let test_spec_validates () =
  Alcotest.check_raises "n" (Invalid_argument "Spec.make: n must be positive")
    (fun () -> ignore (Spec.make ~n:0 ()));
  Alcotest.check_raises "fraction"
    (Invalid_argument "Spec.make: long_lived_fraction outside [0,1]")
    (fun () -> ignore (Spec.make ~n:10 ~long_lived_fraction:1.5 ()));
  Alcotest.check_raises "durations"
    (Invalid_argument "Spec.make: bad short-lived duration range") (fun () ->
      ignore (Spec.make ~n:10 ~short_min:10 ~short_max:5 ()))

(* ------------------------------------------------------------------ *)
(* Generate                                                            *)
(* ------------------------------------------------------------------ *)

let spec = Spec.make ~n:2000 ~long_lived_fraction:0.4 ~seed:11 ()

let test_generate_count_and_bounds () =
  let data = Generate.random_intervals spec in
  Alcotest.(check int) "n tuples" 2000 (Array.length data);
  Array.iter
    (fun (iv, salary) ->
      Alcotest.(check bool) "within lifespan" true
        (Chronon.to_int (Interval.start iv) >= 0
        && Chronon.is_finite (Interval.stop iv)
        && Chronon.to_int (Interval.stop iv) < spec.Spec.lifespan);
      Alcotest.(check bool) "salary range" true
        (salary >= 20_000 && salary <= 60_000))
    data

let test_generate_deterministic () =
  let a = Generate.random_intervals spec in
  let b = Generate.random_intervals spec in
  Alcotest.(check bool) "same seed, same data" true (a = b);
  let other = Spec.make ~n:2000 ~long_lived_fraction:0.4 ~seed:12 () in
  Alcotest.(check bool) "different seed differs" true
    (Generate.random_intervals other <> a)

let duration iv =
  match Interval.duration iv with
  | Some d -> d
  | None -> Alcotest.fail "unbounded generated interval"

let test_generate_duration_mix () =
  let data = Generate.random_intervals spec in
  let long, short =
    Array.to_list data
    |> List.partition (fun (iv, _) -> duration iv > spec.Spec.short_max)
  in
  (* 40% long-lived. *)
  Alcotest.(check int) "long count" 800 (List.length long);
  List.iter
    (fun (iv, _) ->
      let d = duration iv in
      Alcotest.(check bool) "long in [20%,80%] of lifespan" true
        (d >= 200_000 && d <= 800_000))
    long;
  List.iter
    (fun (iv, _) ->
      let d = duration iv in
      Alcotest.(check bool) "short in [1,1000]" true (d >= 1 && d <= 1000))
    short

let test_generate_no_long_lived () =
  let s = Spec.make ~n:500 ~seed:2 () in
  Array.iter
    (fun (iv, _) ->
      Alcotest.(check bool) "short only" true (duration iv <= 1000))
    (Generate.random_intervals s)

let test_generate_random_is_unsorted () =
  let data = Generate.random_intervals spec in
  Alcotest.(check bool) "high disorder" true
    (Ordering.Korder.k_of
       ~compare:(fun (a, _) (b, _) -> Interval.compare a b)
       data
    > 100)

let test_generate_sorted () =
  let data = Generate.sorted_intervals spec in
  Alcotest.(check int) "0-ordered" 0
    (Ordering.Korder.k_of
       ~compare:(fun (a, _) (b, _) -> Interval.compare a b)
       data);
  (* Same multiset as the random version. *)
  let random = Generate.random_intervals spec in
  let key (iv, s) = (Interval.to_string iv, s) in
  let sort l = List.sort Stdlib.compare (List.map key (Array.to_list l)) in
  Alcotest.(check bool) "same tuples" true (sort data = sort random)

let test_generate_k_ordered () =
  let data = Generate.k_ordered_intervals ~k:40 ~percentage:0.08 spec in
  let compare (a, _) (b, _) = Interval.compare a b in
  Alcotest.(check int) "k = 40" 40 (Ordering.Korder.k_of ~compare data);
  let p = Ordering.Korder.percentage ~compare ~k:40 data in
  Alcotest.(check bool) "percentage close" true (Float.abs (p -. 0.08) < 0.005)

let test_generate_relation () =
  let rel = Generate.relation spec in
  Alcotest.(check int) "cardinality" 2000 (Relation.Trel.cardinality rel);
  Alcotest.(check bool) "schema" true
    (Relation.Schema.mem (Relation.Trel.schema rel) "name"
    && Relation.Schema.mem (Relation.Trel.schema rel) "salary");
  let first = Relation.Trel.get rel 0 in
  match Relation.Tuple.value first 0 with
  | Relation.Value.Str name ->
      Alcotest.(check int) "6-char names" 6 (String.length name)
  | _ -> Alcotest.fail "name should be a string"

(* Property: generation respects lifespan for random specs. *)
let prop_generation_in_lifespan =
  QCheck2.Test.make ~name:"generated intervals within lifespan" ~count:50
    QCheck2.Gen.(
      triple (int_range 1 300) (int_range 2000 50_000) (int_bound 1000))
    (fun (n, lifespan, seed) ->
      let s =
        Spec.make ~n ~lifespan ~long_lived_fraction:0.5 ~seed
          ~short_max:(Stdlib.min 1000 (lifespan / 2))
          ()
      in
      Array.for_all
        (fun (iv, _) ->
          Chronon.is_finite (Interval.stop iv)
          && Chronon.to_int (Interval.stop iv) < lifespan)
        (Generate.random_intervals s))

(* ------------------------------------------------------------------ *)
(* Mixed read/write traces                                             *)
(* ------------------------------------------------------------------ *)

let ops_spec ?(insert_ratio = 0.2) ?(delete_ratio = 0.2) ?(initial = 50)
    ?(length = 500) () =
  Spec.ops ~insert_ratio ~delete_ratio ~initial ~length ()

let test_ops_spec_validates () =
  let check_raises name f =
    Alcotest.(check bool) name true
      (match f () with exception Invalid_argument _ -> true | _ -> false)
  in
  check_raises "negative initial" (fun () ->
      Spec.ops ~initial:(-1) ~length:10 ());
  check_raises "zero length" (fun () -> Spec.ops ~initial:1 ~length:0 ());
  check_raises "ratio above 1" (fun () ->
      Spec.ops ~insert_ratio:1.5 ~initial:1 ~length:10 ());
  check_raises "ratios sum above 1" (fun () ->
      Spec.ops ~insert_ratio:0.7 ~delete_ratio:0.7 ~initial:1 ~length:10 ())

let test_trace_deterministic () =
  let a = Generate.trace (ops_spec ()) in
  let b = Generate.trace (ops_spec ()) in
  Alcotest.(check bool) "same initial" true (fst a = fst b);
  Alcotest.(check bool) "same ops" true (snd a = snd b)

let test_trace_shape () =
  let initial, ops = Generate.trace (ops_spec ()) in
  Alcotest.(check int) "initial size" 50 (Array.length initial);
  Alcotest.(check int) "trace length" 500 (Array.length ops)

(* Replay the trace: every delete must name an id that is live at that
   point (preloaded or previously inserted, not yet deleted). *)
let test_trace_deletes_are_valid () =
  let initial, ops = Generate.trace (ops_spec ()) in
  let live = Hashtbl.create 64 in
  Array.iteri (fun id _ -> Hashtbl.replace live id ()) initial;
  let next = ref (Array.length initial) in
  Array.iter
    (function
      | Generate.Insert _ ->
          Hashtbl.replace live !next ();
          incr next
      | Generate.Delete id ->
          Alcotest.(check bool)
            (Printf.sprintf "id %d live" id)
            true (Hashtbl.mem live id);
          Hashtbl.remove live id
      | Generate.Query_point _ | Generate.Query_range _ -> ())
    ops

let test_trace_respects_ratios () =
  let _, ops =
    Generate.trace
      (ops_spec ~insert_ratio:0.3 ~delete_ratio:0.1 ~length:5_000 ())
  in
  let count p = Array.fold_left (fun n op -> if p op then n + 1 else n) 0 ops in
  let inserts =
    count (function Generate.Insert _ -> true | _ -> false)
  and deletes = count (function Generate.Delete _ -> true | _ -> false)
  and queries =
    count (function
      | Generate.Query_point _ | Generate.Query_range _ -> true
      | _ -> false)
  in
  let near what expected got =
    Alcotest.(check bool)
      (Printf.sprintf "%s ~ %.0f (got %d)" what expected got)
      true
      (Float.abs (float_of_int got -. expected) < expected *. 0.25)
  in
  near "inserts" (0.3 *. 5_000.) inserts;
  (* Deletes can degrade to inserts when nothing is live, so only an
     upper-ish bound is meaningful; with 50 preloaded tuples and more
     inserts than deletes the degradation is rare. *)
  near "deletes" (0.1 *. 5_000.) deletes;
  near "queries" (0.6 *. 5_000.) queries

let test_trace_query_mix () =
  let _, ops =
    Generate.trace
      (Spec.ops ~insert_ratio:0. ~delete_ratio:0. ~point_fraction:1.
         ~initial:10 ~length:200 ())
  in
  Alcotest.(check bool)
    "all point queries" true
    (Array.for_all
       (function Generate.Query_point _ -> true | _ -> false)
       ops)

let test_op_to_string () =
  Alcotest.(check bool)
    "insert renders" true
    (String.length (Generate.op_to_string (Generate.Delete 3)) > 0)

let quick name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "workload"
    [
      ( "prng",
        [
          quick "deterministic" test_prng_deterministic;
          quick "seeds differ" test_prng_seeds_differ;
          quick "copy forks stream" test_prng_copy_forks_stream;
          quick "bounds respected" test_prng_bounds;
          quick "bounds validated" test_prng_bounds_validate;
          quick "rough uniformity" test_prng_uniformity_rough;
          quick "float_unit" test_prng_float_unit;
        ] );
      ( "spec",
        [
          quick "paper defaults" test_spec_defaults_match_paper;
          quick "table 3 values" test_spec_table3_values;
          quick "validation" test_spec_validates;
        ] );
      ( "generate",
        [
          quick "count and bounds" test_generate_count_and_bounds;
          quick "deterministic by seed" test_generate_deterministic;
          quick "duration mix" test_generate_duration_mix;
          quick "no long-lived when fraction 0" test_generate_no_long_lived;
          quick "random order is unsorted" test_generate_random_is_unsorted;
          quick "sorted variant" test_generate_sorted;
          quick "k-ordered variant" test_generate_k_ordered;
          quick "full relation" test_generate_relation;
        ] );
      ( "trace",
        [
          quick "ops spec validates" test_ops_spec_validates;
          quick "deterministic" test_trace_deterministic;
          quick "shape" test_trace_shape;
          quick "deletes always valid" test_trace_deletes_are_valid;
          quick "ratios respected" test_trace_respects_ratios;
          quick "query mix" test_trace_query_mix;
          quick "op_to_string" test_op_to_string;
        ] );
      ( "properties",
        List.map
          (QCheck_alcotest.to_alcotest ~long:false)
          [ prop_generation_in_lifespan ] );
    ]
