(* Unit and property tests for the temporal kernel: chronons, intervals
   (including Allen's relations), timelines and granules. *)

open Temporal

let chronon = Alcotest.testable Chronon.pp Chronon.equal
let interval = Alcotest.testable Interval.pp Interval.equal

let c = Chronon.of_int
let iv = Interval.of_ints

(* ------------------------------------------------------------------ *)
(* Chronon                                                             *)
(* ------------------------------------------------------------------ *)

let test_origin_is_zero () =
  Alcotest.(check int) "origin" 0 (Chronon.to_int Chronon.origin)

let test_of_int_negative_rejected () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Chronon.of_int: negative chronon") (fun () ->
      ignore (Chronon.of_int (-1)))

let test_forever_not_finite () =
  Alcotest.(check bool) "forever" false (Chronon.is_finite Chronon.forever);
  Alcotest.(check bool) "zero" true (Chronon.is_finite Chronon.origin)

let test_forever_is_max () =
  Alcotest.(check bool) "compare" true
    (Chronon.( < ) (c 1_000_000_000) Chronon.forever)

let test_succ_pred_roundtrip () =
  Alcotest.check chronon "succ" (c 8) (Chronon.succ (c 7));
  Alcotest.check chronon "pred" (c 7) (Chronon.pred (c 8))

let test_succ_forever_absorbs () =
  Alcotest.check chronon "succ oo" Chronon.forever (Chronon.succ Chronon.forever)

let test_pred_origin_rejected () =
  Alcotest.check_raises "pred 0"
    (Invalid_argument "Chronon.pred: origin has no predecessor") (fun () ->
      ignore (Chronon.pred Chronon.origin))

let test_pred_forever_rejected () =
  Alcotest.check_raises "pred oo"
    (Invalid_argument "Chronon.pred: forever has no predecessor") (fun () ->
      ignore (Chronon.pred Chronon.forever))

let test_add_saturates () =
  Alcotest.check chronon "oo + 3" Chronon.forever
    (Chronon.add Chronon.forever 3);
  Alcotest.check chronon "near-max" Chronon.forever
    (Chronon.add (c (max_int - 1)) 5);
  Alcotest.check chronon "plain" (c 12) (Chronon.add (c 7) 5)

let test_add_negative_rejected () =
  Alcotest.check_raises "negative delta"
    (Invalid_argument "Chronon.add: negative delta") (fun () ->
      ignore (Chronon.add (c 3) (-1)))

let test_diff () =
  Alcotest.(check int) "diff" 13 (Chronon.diff (c 20) (c 7));
  Alcotest.check_raises "diff oo"
    (Invalid_argument "Chronon.diff: infinite chronon") (fun () ->
      ignore (Chronon.diff Chronon.forever (c 0)))

let test_to_string () =
  Alcotest.(check string) "42" "42" (Chronon.to_string (c 42));
  Alcotest.(check string) "oo" "oo" (Chronon.to_string Chronon.forever)

let test_min_max () =
  Alcotest.check chronon "min" (c 3) (Chronon.min (c 3) Chronon.forever);
  Alcotest.check chronon "max" Chronon.forever
    (Chronon.max (c 3) Chronon.forever)

(* ------------------------------------------------------------------ *)
(* Interval                                                            *)
(* ------------------------------------------------------------------ *)

let test_make_validates () =
  Alcotest.check_raises "start after stop"
    (Invalid_argument "Interval.make: start 5 after stop 3") (fun () ->
      ignore (iv 5 3));
  Alcotest.check_raises "infinite start"
    (Invalid_argument "Interval.make: start must be finite") (fun () ->
      ignore (Interval.make Chronon.forever Chronon.forever))

let test_single_instant () =
  let i = Interval.at (c 5) in
  Alcotest.check chronon "start" (c 5) (Interval.start i);
  Alcotest.check chronon "stop" (c 5) (Interval.stop i);
  Alcotest.(check (option int)) "duration" (Some 1) (Interval.duration i)

let test_duration () =
  Alcotest.(check (option int)) "closed" (Some 13) (Interval.duration (iv 8 20));
  Alcotest.(check (option int)) "unbounded" None
    (Interval.duration (Interval.from (c 18)))

let test_compare_by_start_then_stop () =
  Alcotest.(check bool) "start order" true (Interval.compare (iv 1 9) (iv 2 3) < 0);
  Alcotest.(check bool) "stop breaks ties" true
    (Interval.compare (iv 2 3) (iv 2 9) < 0);
  Alcotest.(check int) "equal" 0 (Interval.compare (iv 2 9) (iv 2 9))

let test_contains () =
  let i = iv 8 20 in
  Alcotest.(check bool) "inside" true (Interval.contains i (c 8));
  Alcotest.(check bool) "last" true (Interval.contains i (c 20));
  Alcotest.(check bool) "before" false (Interval.contains i (c 7));
  Alcotest.(check bool) "after" false (Interval.contains i (c 21));
  Alcotest.(check bool) "oo in unbounded" true
    (Interval.contains (Interval.from (c 3)) Chronon.forever)

let test_overlaps () =
  Alcotest.(check bool) "yes" true (Interval.overlaps (iv 1 5) (iv 5 9));
  Alcotest.(check bool) "no (adjacent)" false
    (Interval.overlaps (iv 1 5) (iv 6 9));
  Alcotest.(check bool) "nested" true (Interval.overlaps (iv 1 9) (iv 3 4))

let test_adjacent () =
  Alcotest.(check bool) "meets" true (Interval.adjacent (iv 1 5) (iv 6 9));
  Alcotest.(check bool) "flipped" true (Interval.adjacent (iv 6 9) (iv 1 5));
  Alcotest.(check bool) "gap" false (Interval.adjacent (iv 1 5) (iv 7 9));
  Alcotest.(check bool) "overlap" false (Interval.adjacent (iv 1 5) (iv 5 9))

let test_intersect () =
  Alcotest.(check (option interval)) "common" (Some (iv 5 7))
    (Interval.intersect (iv 1 7) (iv 5 9));
  Alcotest.(check (option interval)) "disjoint" None
    (Interval.intersect (iv 1 4) (iv 5 9))

let test_hull_and_merge () =
  Alcotest.check interval "hull" (iv 1 9) (Interval.hull (iv 1 4) (iv 7 9));
  Alcotest.(check (option interval)) "merge adjacent" (Some (iv 1 9))
    (Interval.merge (iv 1 5) (iv 6 9));
  Alcotest.(check (option interval)) "merge gap" None
    (Interval.merge (iv 1 4) (iv 6 9))

let test_covers () =
  Alcotest.(check bool) "covers" true (Interval.covers (iv 1 9) (iv 3 9));
  Alcotest.(check bool) "not" false (Interval.covers (iv 3 9) (iv 1 9));
  Alcotest.(check bool) "full covers all" true
    (Interval.covers Interval.full (Interval.from (c 1000)))

let allen_case name a b expected =
  Alcotest.(check string) name expected (Interval.allen_to_string (Interval.allen a b))

let test_allen_all_thirteen () =
  allen_case "before" (iv 1 3) (iv 5 9) "before";
  allen_case "meets" (iv 1 4) (iv 5 9) "meets";
  allen_case "overlaps" (iv 1 6) (iv 5 9) "overlaps";
  allen_case "finished-by" (iv 1 9) (iv 5 9) "finished-by";
  allen_case "contains" (iv 1 9) (iv 5 8) "contains";
  allen_case "starts" (iv 5 7) (iv 5 9) "starts";
  allen_case "equals" (iv 5 9) (iv 5 9) "equals";
  allen_case "started-by" (iv 5 9) (iv 5 7) "started-by";
  allen_case "during" (iv 6 8) (iv 5 9) "during";
  allen_case "finishes" (iv 7 9) (iv 5 9) "finishes";
  allen_case "overlapped-by" (iv 5 9) (iv 1 6) "overlapped-by";
  allen_case "met-by" (iv 5 9) (iv 1 4) "met-by";
  allen_case "after" (iv 5 9) (iv 1 3) "after"

let test_allen_unbounded () =
  allen_case "oo equals" (Interval.from (c 5)) (Interval.from (c 5)) "equals";
  allen_case "oo started-by" (Interval.from (c 5)) (iv 5 9) "started-by";
  allen_case "oo contains" (Interval.from (c 1)) (iv 5 9) "contains";
  allen_case "oo met-by" (Interval.from (c 5)) (iv 1 4) "met-by";
  allen_case "oo finishes" (Interval.from (c 7))
    (Interval.from (c 2)) "finishes"

(* Property: for random interval pairs, exactly one Allen relation holds,
   and the relation of (b,a) is the inverse of (a,b). *)
let arbitrary_interval ?(max_time = 50) () =
  QCheck2.Gen.(
    let* s = int_bound (max_time - 1) in
    let* len = int_bound 10 in
    let* unbounded = map (fun n -> n = 0) (int_bound 9) in
    if unbounded then return (Interval.from (c s))
    else return (iv s (min (max_time - 1) (s + len))))

let allen_inverse = function
  | Interval.Before -> Interval.After
  | Meets -> Met_by
  | Overlaps -> Overlapped_by
  | Finished_by -> Finishes
  | Contains -> During
  | Starts -> Started_by
  | Equals -> Equals
  | Started_by -> Starts
  | During -> Contains
  | Finishes -> Finished_by
  | Overlapped_by -> Overlaps
  | Met_by -> Meets
  | After -> Before

let prop_allen_inverse =
  QCheck2.Test.make ~name:"allen (b,a) is inverse of (a,b)" ~count:500
    QCheck2.Gen.(pair (arbitrary_interval ()) (arbitrary_interval ()))
    (fun (a, b) -> Interval.allen b a = allen_inverse (Interval.allen a b))

let prop_allen_consistent_with_overlaps =
  QCheck2.Test.make ~name:"allen vs overlaps/adjacent" ~count:500
    QCheck2.Gen.(pair (arbitrary_interval ()) (arbitrary_interval ()))
    (fun (a, b) ->
      let rel = Interval.allen a b in
      let disjoint =
        match rel with
        | Before | Meets | After | Met_by -> true
        | _ -> false
      in
      disjoint = not (Interval.overlaps a b)
      && (match rel with
         | Meets | Met_by -> Interval.adjacent a b
         | _ -> true))

(* ------------------------------------------------------------------ *)
(* Timeline                                                            *)
(* ------------------------------------------------------------------ *)

let tl l = Timeline.of_list l

let int_timeline = Alcotest.testable (Timeline.pp Format.pp_print_int)
    (Timeline.equal Int.equal)

let sample =
  tl [ (iv 0 6, 0); (iv 7 7, 1); (iv 8 12, 2);
       (Interval.from (c 13), 1) ]

let test_of_list_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Timeline.of_list: empty timeline")
    (fun () -> ignore (tl []))

let test_of_list_rejects_gap () =
  Alcotest.(check_raises) "gap"
    (Invalid_argument
       "Timeline.of_list: gap or overlap between [0,6] and [8,12]")
    (fun () -> ignore (tl [ (iv 0 6, 0); (iv 8 12, 1) ]))

let test_of_list_rejects_overlap () =
  Alcotest.(check_raises) "overlap"
    (Invalid_argument
       "Timeline.of_list: gap or overlap between [0,6] and [6,12]")
    (fun () -> ignore (tl [ (iv 0 6, 0); (iv 6 12, 1) ]))

let test_of_list_rejects_after_infinite () =
  Alcotest.(check_raises) "infinite then more"
    (Invalid_argument "Timeline.of_list: segment after an infinite segment")
    (fun () ->
      ignore (tl [ (Interval.from (c 0), 0); (iv 7 9, 1) ]))

let test_cover () =
  Alcotest.check interval "cover" (Interval.from (c 0)) (Timeline.cover sample)

let test_length () = Alcotest.(check int) "length" 4 (Timeline.length sample)

let test_value_at () =
  Alcotest.(check (option int)) "first" (Some 0) (Timeline.value_at sample (c 3));
  Alcotest.(check (option int)) "single" (Some 1) (Timeline.value_at sample (c 7));
  Alcotest.(check (option int)) "mid" (Some 2) (Timeline.value_at sample (c 12));
  Alcotest.(check (option int)) "tail" (Some 1)
    (Timeline.value_at sample (c 1_000_000));
  Alcotest.(check (option int)) "at oo" (Some 1)
    (Timeline.value_at sample Chronon.forever)

let test_value_at_outside_cover () =
  let t = tl [ (iv 5 9, 42) ] in
  Alcotest.(check (option int)) "before" None (Timeline.value_at t (c 4));
  Alcotest.(check (option int)) "after" None (Timeline.value_at t (c 10))

let test_map () =
  let doubled = Timeline.map (fun v -> v * 2) sample in
  Alcotest.(check (option int)) "mapped" (Some 4)
    (Timeline.value_at doubled (c 10))

let test_fold_and_iter () =
  let total = Timeline.fold (fun acc _ v -> acc + v) 0 sample in
  Alcotest.(check int) "fold" 4 total;
  let count = ref 0 in
  Timeline.iter (fun _ _ -> incr count) sample;
  Alcotest.(check int) "iter" 4 !count

let test_coalesce_merges_equal_runs () =
  let t =
    tl [ (iv 0 2, 1); (iv 3 5, 1); (iv 6 7, 2); (iv 8 9, 1) ]
  in
  let expected = tl [ (iv 0 5, 1); (iv 6 7, 2); (iv 8 9, 1) ] in
  Alcotest.check int_timeline "coalesced" expected
    (Timeline.coalesce ~equal:Int.equal t)

let test_coalesce_idempotent () =
  let t = Timeline.coalesce ~equal:Int.equal sample in
  Alcotest.check int_timeline "idempotent" t
    (Timeline.coalesce ~equal:Int.equal t)

let test_refine () =
  let a = tl [ (iv 0 4, "a"); (iv 5 9, "b") ] in
  let b = tl [ (iv 0 7, 1); (iv 8 9, 2) ] in
  let r = Timeline.refine a b in
  Alcotest.(check int) "segments" 3 (Timeline.length r);
  Alcotest.(check (list (pair string int)))
    "values"
    [ ("a", 1); ("b", 1); ("b", 2) ]
    (List.map snd (Timeline.to_list r))

let test_refine_rejects_mismatched_covers () =
  let a = tl [ (iv 0 4, "a") ] in
  let b = tl [ (iv 0 7, 1) ] in
  Alcotest.check_raises "covers" (Invalid_argument "Timeline.refine: covers differ")
    (fun () -> ignore (Timeline.refine a b))

let test_equivalent_ignores_segmentation () =
  let a = tl [ (iv 0 4, 1); (iv 5 9, 1) ] in
  let b = tl [ (iv 0 9, 1) ] in
  Alcotest.(check bool) "equivalent" true (Timeline.equivalent Int.equal a b);
  Alcotest.(check bool) "not equal" false (Timeline.equal Int.equal a b)

let test_patch_splits_one_segment () =
  let t = tl [ (iv 0 9, 1) ] in
  let expected = tl [ (iv 0 2, 1); (iv 3 6, 11); (iv 7 9, 1) ] in
  Alcotest.check int_timeline "split" expected
    (Timeline.patch t (iv 3 6) (( + ) 10))

let test_patch_spans_segments () =
  let t = tl [ (iv 0 4, 1); (iv 5 9, 2); (iv 10 14, 3) ] in
  let expected =
    tl [ (iv 0 2, 1); (iv 3 4, 11); (iv 5 9, 12); (iv 10 12, 13); (iv 13 14, 3) ]
  in
  Alcotest.check int_timeline "across" expected
    (Timeline.patch t (iv 3 12) (( + ) 10))

let test_patch_whole_cover () =
  let t = tl [ (iv 0 4, 1); (iv 5 9, 2) ] in
  let expected = tl [ (iv 0 4, 2); (iv 5 9, 3) ] in
  Alcotest.check int_timeline "whole" expected
    (Timeline.patch t (iv 0 9) (( + ) 1))

let test_patch_exact_boundaries () =
  let t = tl [ (iv 0 4, 1); (iv 5 9, 2); (iv 10 14, 3) ] in
  let expected = tl [ (iv 0 4, 1); (iv 5 9, 12); (iv 10 14, 3) ] in
  Alcotest.check int_timeline "aligned" expected
    (Timeline.patch t (iv 5 9) (( + ) 10))

let test_patch_equal_coalesces_seams () =
  (* An identity delta with ~equal leaves no seam behind... *)
  let t = tl [ (iv 0 9, 1) ] in
  Alcotest.check int_timeline "identity merges back" t
    (Timeline.patch ~equal:Int.equal t (iv 3 6) Fun.id);
  (* ...and a delta that restores a neighbour's value merges into it. *)
  let t2 = tl [ (iv 0 4, 1); (iv 5 9, 2) ] in
  let expected = tl [ (iv 0 9, 1) ] in
  Alcotest.check int_timeline "neighbour merge" expected
    (Timeline.patch ~equal:Int.equal t2 (iv 5 9) (fun _ -> 1))

let test_patch_outside_cover_rejected () =
  let t = tl [ (iv 5 9, 1) ] in
  Alcotest.check_raises "outside"
    (Invalid_argument "Timeline.patch: [3,7] outside the cover [5,9]")
    (fun () -> ignore (Timeline.patch t (iv 3 7) Fun.id))

let test_clip () =
  let t = tl [ (iv 0 4, 1); (iv 5 9, 2); (iv 10 14, 3) ] in
  (match Timeline.clip t (iv 3 11) with
  | None -> Alcotest.fail "expected Some"
  | Some c ->
      Alcotest.check int_timeline "trimmed"
        (tl [ (iv 3 4, 1); (iv 5 9, 2); (iv 10 11, 3) ])
        c);
  (match Timeline.clip t (iv 5 9) with
  | None -> Alcotest.fail "expected Some"
  | Some c -> Alcotest.check int_timeline "aligned" (tl [ (iv 5 9, 2) ]) c);
  Alcotest.(check bool)
    "disjoint" true
    (Option.is_none (Timeline.clip t (iv 20 30)))

(* patch against the obvious rebuild: apply f through of_list over the
   pointwise-patched segment list. *)
let gen_timeline_and_span =
  QCheck2.Gen.(
    let* cuts = list_size (int_range 0 8) (int_range 1 58) in
    let* vals = list_size (return 12) (int_range 0 5) in
    let* unbounded = bool in
    let bounds = List.sort_uniq Int.compare (0 :: 59 :: cuts) in
    (* Consecutive bounds become segments [b_i, b_{i+1}-1], last to 59. *)
    let rec segments vs = function
      | b :: (b' :: _ as rest) ->
          let v = match vs with v :: _ -> v | [] -> 0 in
          let tail = match vs with _ :: t -> t | [] -> [] in
          (iv b (b' - 1), v) :: segments tail rest
      | [ last ] ->
          let v = match vs with v :: _ -> v | [] -> 0 in
          [ ((if unbounded then Interval.from (c last) else iv last 59), v) ]
      | [] -> []
    in
    let t = Timeline.of_list (segments vals bounds) in
    let* s = int_range 0 59 in
    let* e = int_range s 59 in
    return (t, iv s e))

let prop_patch_matches_rebuild =
  QCheck2.Test.make ~name:"patch = pointwise rebuild" ~count:500
    ~print:(fun (t, span) ->
      Printf.sprintf "%s patched over %s"
        (Format.asprintf "%a" (Timeline.pp Format.pp_print_int) t)
        (Interval.to_string span))
    gen_timeline_and_span
    (fun (t, span) ->
      let f v = v + 100 in
      let patched = Timeline.patch t span f in
      let reference_value c0 =
        Option.map
          (fun v -> if Interval.contains span c0 then f v else v)
          (Timeline.value_at t c0)
      in
      (* Contiguity invariants survive (of_list re-validates them)... *)
      ignore (Timeline.of_list (Timeline.to_list patched));
      (* ...and the patch agrees with the rebuild at every instant. *)
      List.for_all
        (fun i -> Timeline.value_at patched (c i) = reference_value (c i))
        (List.init 61 Fun.id))

let prop_patch_equal_is_coalesced =
  QCheck2.Test.make ~name:"patch ~equal leaves a coalesced timeline" ~count:500
    ~print:(fun (t, span) ->
      Printf.sprintf "%s patched over %s"
        (Format.asprintf "%a" (Timeline.pp Format.pp_print_int) t)
        (Interval.to_string span))
    gen_timeline_and_span
    (fun (t, span) ->
      let t = Timeline.coalesce ~equal:Int.equal t in
      (* A value-collapsing delta is the worst case for seams. *)
      let patched = Timeline.patch ~equal:Int.equal t span (fun v -> v mod 2) in
      Timeline.equal Int.equal patched
        (Timeline.coalesce ~equal:Int.equal patched))

(* ------------------------------------------------------------------ *)
(* Granule                                                             *)
(* ------------------------------------------------------------------ *)

let test_granule_make_validates () =
  Alcotest.check_raises "zero length"
    (Invalid_argument "Granule.make: span length must be positive") (fun () ->
      ignore (Granule.make 0));
  Alcotest.check_raises "infinite anchor"
    (Invalid_argument "Granule.make: anchor must be finite") (fun () ->
      ignore (Granule.make ~anchor:Chronon.forever 10))

let test_granule_index_of () =
  let g = Granule.make 100 in
  Alcotest.(check int) "first" 0 (Granule.index_of g (c 0));
  Alcotest.(check int) "edge" 0 (Granule.index_of g (c 99));
  Alcotest.(check int) "second" 1 (Granule.index_of g (c 100));
  Alcotest.(check int) "big" 123 (Granule.index_of g (c 12345))

let test_granule_anchored () =
  let g = Granule.make ~anchor:(c 50) 100 in
  Alcotest.(check int) "anchored" 0 (Granule.index_of g (c 149));
  Alcotest.check interval "span" (iv 150 249) (Granule.span_of g 1)

let test_granule_span_roundtrip () =
  let g = Granule.make 365 in
  for i = 0 to 10 do
    let span = Granule.span_of g i in
    Alcotest.(check int) "start maps back" i
      (Granule.index_of g (Interval.start span));
    Alcotest.(check int) "stop maps back" i
      (Granule.index_of g (Interval.stop span))
  done

let test_granule_quantize () =
  let g = Granule.make 100 in
  Alcotest.(check (pair int (option int))) "bounded" (0, Some 2)
    (Granule.quantize g (iv 50 250));
  Alcotest.(check (pair int (option int))) "unbounded" (1, None)
    (Granule.quantize g (Interval.from (c 100)))

let test_granule_align () =
  let g = Granule.make 100 in
  Alcotest.check interval "aligned" (iv 0 299) (Granule.align g (iv 50 250));
  Alcotest.check interval "unbounded" (Interval.from (c 100))
    (Granule.align g (Interval.from (c 123)))

let test_granule_instant () =
  Alcotest.(check int) "instant index" 17 (Granule.index_of Granule.instant (c 17));
  Alcotest.check interval "instant span" (iv 17 17)
    (Granule.span_of Granule.instant 17)

(* ------------------------------------------------------------------ *)
(* Interval_set                                                        *)
(* ------------------------------------------------------------------ *)

let iset l = Interval_set.of_intervals l

let test_iset_canonical_form () =
  let s = iset [ iv 5 9; iv 0 2; iv 8 12; iv 3 3; iv 20 25 ] in
  Alcotest.(check (list string)) "canonical"
    [ "[0,3]"; "[5,12]"; "[20,25]" ]
    (List.map Interval.to_string (Interval_set.intervals s));
  Alcotest.(check int) "cardinal" 3 (Interval_set.cardinal s)

let test_iset_empty () =
  Alcotest.(check bool) "empty" true (Interval_set.is_empty Interval_set.empty);
  Alcotest.(check bool) "mem" false (Interval_set.mem Interval_set.empty (c 3));
  Alcotest.(check bool) "hull" true (Interval_set.hull Interval_set.empty = None)

let test_iset_mem () =
  let s = iset [ iv 0 4; iv 10 14 ] in
  Alcotest.(check bool) "in first" true (Interval_set.mem s (c 2));
  Alcotest.(check bool) "gap" false (Interval_set.mem s (c 7));
  Alcotest.(check bool) "in second" true (Interval_set.mem s (c 14));
  Alcotest.(check bool) "after" false (Interval_set.mem s (c 15))

let test_iset_union_inter () =
  let a = iset [ iv 0 9 ] and b = iset [ iv 5 14; iv 20 24 ] in
  Alcotest.(check (list string)) "union" [ "[0,14]"; "[20,24]" ]
    (List.map Interval.to_string (Interval_set.intervals (Interval_set.union a b)));
  Alcotest.(check (list string)) "inter" [ "[5,9]" ]
    (List.map Interval.to_string (Interval_set.intervals (Interval_set.inter a b)))

let test_iset_diff () =
  let a = iset [ iv 0 20 ] and b = iset [ iv 3 5; iv 10 12 ] in
  Alcotest.(check (list string)) "diff"
    [ "[0,2]"; "[6,9]"; "[13,20]" ]
    (List.map Interval.to_string (Interval_set.intervals (Interval_set.diff a b)))

let test_iset_diff_unbounded () =
  let a = iset [ Interval.from (c 0) ] and b = iset [ iv 5 9 ] in
  Alcotest.(check (list string)) "diff oo" [ "[0,4]"; "[10,oo]" ]
    (List.map Interval.to_string (Interval_set.intervals (Interval_set.diff a b)))

let test_iset_complement () =
  let s = iset [ iv 5 9 ] in
  Alcotest.(check (list string)) "complement" [ "[0,4]"; "[10,oo]" ]
    (List.map Interval.to_string
       (Interval_set.intervals (Interval_set.complement s)));
  Alcotest.(check (list string)) "within" [ "[3,4]" ]
    (List.map Interval.to_string
       (Interval_set.intervals (Interval_set.complement ~within:(iv 3 8) s)))

let test_iset_duration_and_hull () =
  let s = iset [ iv 0 4; iv 10 14 ] in
  Alcotest.(check (option int)) "duration" (Some 10) (Interval_set.duration s);
  Alcotest.(check (option int)) "unbounded" None
    (Interval_set.duration (iset [ Interval.from (c 3) ]));
  Alcotest.(check bool) "hull" true
    (Interval_set.hull s = Some (iv 0 14))

let test_iset_subset () =
  let a = iset [ iv 2 4; iv 8 9 ] and b = iset [ iv 0 10 ] in
  Alcotest.(check bool) "subset" true (Interval_set.subset a b);
  Alcotest.(check bool) "not superset" false (Interval_set.subset b a)

let gen_iset =
  QCheck2.Gen.(
    map iset
      (list_size (int_range 0 10)
         (let* s = int_bound 60 in
          let* len = int_bound 12 in
          return (iv s (s + len)))))

let prop_iset_setlike name op model =
  QCheck2.Test.make ~name ~count:300
    QCheck2.Gen.(triple gen_iset gen_iset (int_bound 80))
    (fun (a, b, probe) ->
      let p = c probe in
      Interval_set.mem (op a b) p
      = model (Interval_set.mem a p) (Interval_set.mem b p))

let prop_iset_union = prop_iset_setlike "iset union = pointwise or" Interval_set.union ( || )
let prop_iset_inter = prop_iset_setlike "iset inter = pointwise and" Interval_set.inter ( && )
let prop_iset_diff =
  prop_iset_setlike "iset diff = pointwise and-not" Interval_set.diff
    (fun x y -> x && not y)

let prop_iset_canonical =
  QCheck2.Test.make ~name:"iset results stay canonical" ~count:300
    QCheck2.Gen.(pair gen_iset gen_iset)
    (fun (a, b) ->
      let canonical s =
        let rec ok = function
          | x :: (y :: _ as rest) ->
              Chronon.is_finite (Interval.stop x)
              && Chronon.( > ) (Interval.start y)
                   (Chronon.succ (Interval.stop x))
              && ok rest
          | _ -> true
        in
        ok (Interval_set.intervals s)
      in
      canonical (Interval_set.union a b)
      && canonical (Interval_set.inter a b)
      && canonical (Interval_set.diff a b))

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "temporal"
    [
      ( "chronon",
        [
          Alcotest.test_case "origin is zero" `Quick test_origin_is_zero;
          Alcotest.test_case "of_int rejects negatives" `Quick
            test_of_int_negative_rejected;
          Alcotest.test_case "forever is not finite" `Quick
            test_forever_not_finite;
          Alcotest.test_case "forever is maximal" `Quick test_forever_is_max;
          Alcotest.test_case "succ/pred roundtrip" `Quick
            test_succ_pred_roundtrip;
          Alcotest.test_case "succ forever absorbs" `Quick
            test_succ_forever_absorbs;
          Alcotest.test_case "pred origin rejected" `Quick
            test_pred_origin_rejected;
          Alcotest.test_case "pred forever rejected" `Quick
            test_pred_forever_rejected;
          Alcotest.test_case "add saturates" `Quick test_add_saturates;
          Alcotest.test_case "add rejects negatives" `Quick
            test_add_negative_rejected;
          Alcotest.test_case "diff" `Quick test_diff;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "min/max" `Quick test_min_max;
        ] );
      ( "interval",
        [
          Alcotest.test_case "make validates" `Quick test_make_validates;
          Alcotest.test_case "single instant" `Quick test_single_instant;
          Alcotest.test_case "duration" `Quick test_duration;
          Alcotest.test_case "compare orders by (start, stop)" `Quick
            test_compare_by_start_then_stop;
          Alcotest.test_case "contains" `Quick test_contains;
          Alcotest.test_case "overlaps" `Quick test_overlaps;
          Alcotest.test_case "adjacent" `Quick test_adjacent;
          Alcotest.test_case "intersect" `Quick test_intersect;
          Alcotest.test_case "hull and merge" `Quick test_hull_and_merge;
          Alcotest.test_case "covers" `Quick test_covers;
          Alcotest.test_case "all thirteen Allen relations" `Quick
            test_allen_all_thirteen;
          Alcotest.test_case "Allen with unbounded intervals" `Quick
            test_allen_unbounded;
        ] );
      qsuite "interval-properties"
        [ prop_allen_inverse; prop_allen_consistent_with_overlaps ];
      ( "timeline",
        [
          Alcotest.test_case "rejects empty" `Quick test_of_list_rejects_empty;
          Alcotest.test_case "rejects gaps" `Quick test_of_list_rejects_gap;
          Alcotest.test_case "rejects overlaps" `Quick
            test_of_list_rejects_overlap;
          Alcotest.test_case "rejects segments after infinity" `Quick
            test_of_list_rejects_after_infinite;
          Alcotest.test_case "cover" `Quick test_cover;
          Alcotest.test_case "length" `Quick test_length;
          Alcotest.test_case "value_at" `Quick test_value_at;
          Alcotest.test_case "value_at outside cover" `Quick
            test_value_at_outside_cover;
          Alcotest.test_case "map" `Quick test_map;
          Alcotest.test_case "fold and iter" `Quick test_fold_and_iter;
          Alcotest.test_case "coalesce merges equal runs" `Quick
            test_coalesce_merges_equal_runs;
          Alcotest.test_case "coalesce idempotent" `Quick
            test_coalesce_idempotent;
          Alcotest.test_case "refine" `Quick test_refine;
          Alcotest.test_case "refine rejects mismatched covers" `Quick
            test_refine_rejects_mismatched_covers;
          Alcotest.test_case "equivalent ignores segmentation" `Quick
            test_equivalent_ignores_segmentation;
          Alcotest.test_case "patch splits one segment" `Quick
            test_patch_splits_one_segment;
          Alcotest.test_case "patch spans segments" `Quick
            test_patch_spans_segments;
          Alcotest.test_case "patch whole cover" `Quick test_patch_whole_cover;
          Alcotest.test_case "patch exact boundaries" `Quick
            test_patch_exact_boundaries;
          Alcotest.test_case "patch ~equal coalesces seams" `Quick
            test_patch_equal_coalesces_seams;
          Alcotest.test_case "patch outside cover rejected" `Quick
            test_patch_outside_cover_rejected;
          Alcotest.test_case "clip" `Quick test_clip;
        ] );
      qsuite "timeline-properties"
        [ prop_patch_matches_rebuild; prop_patch_equal_is_coalesced ];
      ( "interval-set",
        [
          Alcotest.test_case "canonical form" `Quick test_iset_canonical_form;
          Alcotest.test_case "empty set" `Quick test_iset_empty;
          Alcotest.test_case "membership" `Quick test_iset_mem;
          Alcotest.test_case "union and inter" `Quick test_iset_union_inter;
          Alcotest.test_case "diff" `Quick test_iset_diff;
          Alcotest.test_case "diff with unbounded" `Quick test_iset_diff_unbounded;
          Alcotest.test_case "complement" `Quick test_iset_complement;
          Alcotest.test_case "duration and hull" `Quick
            test_iset_duration_and_hull;
          Alcotest.test_case "subset" `Quick test_iset_subset;
        ] );
      qsuite "interval-set-properties"
        [ prop_iset_union; prop_iset_inter; prop_iset_diff; prop_iset_canonical ];
      ( "granule",
        [
          Alcotest.test_case "make validates" `Quick test_granule_make_validates;
          Alcotest.test_case "index_of" `Quick test_granule_index_of;
          Alcotest.test_case "anchored granule" `Quick test_granule_anchored;
          Alcotest.test_case "span/index roundtrip" `Quick
            test_granule_span_roundtrip;
          Alcotest.test_case "quantize" `Quick test_granule_quantize;
          Alcotest.test_case "align" `Quick test_granule_align;
          Alcotest.test_case "instant granularity" `Quick test_granule_instant;
        ] );
    ]
