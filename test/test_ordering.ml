(* Tests for the sortedness metrics of Section 5.2 (k-orderedness and
   k-ordered-percentage, including the paper's Table 2) and the controlled
   perturbations used to build the Figure 7-9 inputs. *)

open Ordering

let sorted n = Array.init n Fun.id

let swap a i j =
  let copy = Array.copy a in
  let tmp = copy.(i) in
  copy.(i) <- copy.(j);
  copy.(j) <- tmp;
  copy

(* ------------------------------------------------------------------ *)
(* Korder                                                              *)
(* ------------------------------------------------------------------ *)

let test_sorted_is_zero_ordered () =
  Alcotest.(check int) "k" 0 (Korder.k_of ~compare:Int.compare (sorted 100));
  Alcotest.(check int) "empty" 0 (Korder.k_of ~compare:Int.compare [||])

let test_single_swap_displacements () =
  let a = swap (sorted 10) 2 7 in
  let disp = Korder.displacements ~compare:Int.compare a in
  Alcotest.(check (array int)) "displacements"
    [| 0; 0; 5; 0; 0; 0; 0; 5; 0; 0 |] disp;
  Alcotest.(check int) "k" 5 (Korder.k_of ~compare:Int.compare a)

let test_reversed_array () =
  let n = 10 in
  let a = Array.init n (fun i -> n - 1 - i) in
  Alcotest.(check int) "k of reversal" (n - 1)
    (Korder.k_of ~compare:Int.compare a)

let test_duplicates_use_stable_order () =
  (* All-equal keys: stable sort keeps the original order, so any
     arrangement of equal keys is 0-ordered. *)
  let a = Array.make 20 7 in
  Alcotest.(check int) "all equal" 0 (Korder.k_of ~compare:Int.compare a)

let test_percentage_sorted_is_zero () =
  Alcotest.(check (float 1e-12)) "0" 0.
    (Korder.percentage ~compare:Int.compare ~k:100 (sorted 1000))

let test_percentage_rejects_bad_k () =
  Alcotest.check_raises "k=0"
    (Invalid_argument "Korder.percentage: k must be positive") (fun () ->
      ignore (Korder.percentage ~compare:Int.compare ~k:0 (sorted 10)))

let test_percentage_rejects_insufficient_k () =
  let a = swap (sorted 100) 0 50 in
  Alcotest.check_raises "k too small"
    (Invalid_argument "Korder.percentage: displacement 50 exceeds k=10")
    (fun () -> ignore (Korder.percentage ~compare:Int.compare ~k:10 a))

let test_percentage_full_swap_pattern () =
  (* The paper's example: n=6, k=3, swap 1<->4, 2<->5, 3<->6 (1-based)
     gives percentage 1. *)
  let a = [| 3; 4; 5; 0; 1; 2 |] in
  Alcotest.(check (float 1e-12)) "maximal disorder" 1.
    (Korder.percentage ~compare:Int.compare ~k:3 a)

(* Table 2 (n = 10000, k = 100). *)

let table2_n = 10_000
let table2_k = 100

let percentage a =
  Korder.percentage ~compare:Int.compare ~k:table2_k a

let test_table2_sorted () =
  Alcotest.(check (float 1e-9)) "row 1: sorted" 0. (percentage (sorted table2_n))

let test_table2_one_swap_100_apart () =
  let a = swap (sorted table2_n) 0 100 in
  Alcotest.(check (float 1e-9)) "row 2: 0.0002" 0.0002 (percentage a)

let test_table2_twenty_tuples_100_out () =
  let a =
    Perturb.realize_displacements [ (100, 20) ] (sorted table2_n)
  in
  Alcotest.(check (float 1e-9)) "row 3: 0.002" 0.002 (percentage a)

let test_table2_one_tuple_per_displacement () =
  let spec = List.init 100 (fun i -> (i + 1, 1)) in
  let a = Perturb.realize_displacements spec (sorted table2_n) in
  Alcotest.(check (float 1e-9)) "row 4: 0.00505" 0.00505 (percentage a)

let test_table2_ten_tuples_per_displacement () =
  let spec = List.init 100 (fun i -> (i + 1, 10)) in
  let a = Perturb.realize_displacements spec (sorted table2_n) in
  Alcotest.(check (float 1e-9)) "row 5: 0.0505" 0.0505 (percentage a)

(* ------------------------------------------------------------------ *)
(* Perturb                                                             *)
(* ------------------------------------------------------------------ *)

let mk_rand seed =
  let prng = Workload.Prng.create ~seed in
  Workload.Prng.int_bounded prng

let test_shuffle_is_permutation () =
  let a = sorted 500 in
  let s = Perturb.shuffle ~rand:(mk_rand 1) a in
  let back = Array.copy s in
  Array.sort Int.compare back;
  Alcotest.(check (array int)) "permutation" a back;
  Alcotest.(check bool) "actually shuffled" true (s <> a)

let test_shuffle_leaves_input_untouched () =
  let a = sorted 50 in
  ignore (Perturb.shuffle ~rand:(mk_rand 2) a);
  Alcotest.(check (array int)) "input intact" (sorted 50) a

let test_k_ordered_exact_k () =
  let a = sorted 2000 in
  List.iter
    (fun (k, p) ->
      let out = Perturb.k_ordered ~rand:(mk_rand 3) ~k ~percentage:p a in
      Alcotest.(check int)
        (Printf.sprintf "k=%d p=%.2f" k p)
        k
        (Korder.k_of ~compare:Int.compare out))
    [ (4, 0.02); (4, 0.14); (40, 0.08); (400, 0.14) ]

let test_k_ordered_percentage_close () =
  let a = sorted 10_000 in
  List.iter
    (fun p ->
      let out = Perturb.k_ordered ~rand:(mk_rand 4) ~k:40 ~percentage:p a in
      let measured = Korder.percentage ~compare:Int.compare ~k:40 out in
      Alcotest.(check bool)
        (Printf.sprintf "%.3f vs %.3f" p measured)
        true
        (Float.abs (measured -. p) < 0.001))
    [ 0.02; 0.08; 0.14 ]

let test_k_ordered_zero_percentage () =
  let a = sorted 100 in
  let out = Perturb.k_ordered ~rand:(mk_rand 5) ~k:10 ~percentage:0. a in
  Alcotest.(check (array int)) "unchanged" a out

let test_k_ordered_validates () =
  Alcotest.check_raises "k" (Invalid_argument "Perturb.k_ordered: k must be positive")
    (fun () ->
      ignore (Perturb.k_ordered ~rand:(mk_rand 6) ~k:0 ~percentage:0.1 (sorted 10)));
  Alcotest.check_raises "percentage"
    (Invalid_argument "Perturb.k_ordered: percentage outside [0,1]") (fun () ->
      ignore
        (Perturb.k_ordered ~rand:(mk_rand 6) ~k:2 ~percentage:1.5 (sorted 10)));
  Alcotest.check_raises "too small"
    (Invalid_argument "Perturb.k_ordered: array too small for distance-k swaps")
    (fun () ->
      ignore
        (Perturb.k_ordered ~rand:(mk_rand 6) ~k:20 ~percentage:0.5 (sorted 10)))

let test_realize_displacements_exact_profile () =
  let spec = [ (3, 4); (7, 2) ] in
  let a = Perturb.realize_displacements spec (sorted 200) in
  let disp = Korder.displacements ~compare:Int.compare a in
  let count d = Array.fold_left (fun acc x -> if x = d then acc + 1 else acc) 0 disp in
  Alcotest.(check int) "four at 3" 4 (count 3);
  Alcotest.(check int) "two at 7" 2 (count 7);
  Alcotest.(check int) "rest in place" (200 - 6) (count 0)

let test_realize_displacements_odd_profile () =
  (* Odd counts per displacement, realized through 4-cycles. *)
  let spec = [ (1, 1); (2, 1); (3, 1); (4, 1) ] in
  let a = Perturb.realize_displacements spec (sorted 50) in
  let disp = Korder.displacements ~compare:Int.compare a in
  let count d = Array.fold_left (fun acc x -> if x = d then acc + 1 else acc) 0 disp in
  List.iter (fun d -> Alcotest.(check int) (string_of_int d) 1 (count d)) [ 1; 2; 3; 4 ]

let test_realize_displacements_validates () =
  Alcotest.check_raises "negative d"
    (Invalid_argument "Perturb.realize_displacements: non-positive displacement")
    (fun () -> ignore (Perturb.realize_displacements [ (0, 2) ] (sorted 10)));
  Alcotest.(check bool) "ungroupable odds" true
    (match Perturb.realize_displacements [ (1, 1); (2, 1) ] (sorted 10) with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "too small" true
    (match Perturb.realize_displacements [ (50, 2) ] (sorted 10) with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* Relation-level helpers. *)

let test_relation_metrics () =
  let employed = Relation.Fixtures.employed () in
  Alcotest.(check int) "employed is 3-ordered" 3
    (Korder.k_of_relation employed);
  let sorted_rel = Relation.Trel.sort_by_time employed in
  Alcotest.(check int) "sorted relation" 0 (Korder.k_of_relation sorted_rel);
  Alcotest.(check (float 1e-9)) "sorted percentage" 0.
    (Korder.relation_percentage ~k:10 sorted_rel);
  Alcotest.(check bool) "unsorted percentage positive" true
    (Korder.relation_percentage ~k:3 employed > 0.)

(* ------------------------------------------------------------------ *)
(* Streaming estimator vs the exact oracle                             *)
(* ------------------------------------------------------------------ *)

let estimate_with_slack ?capacity a =
  let est = Korder.estimator ?capacity ~compare:Int.compare () in
  Array.iter (Korder.observe est) a;
  (Korder.estimate est, Korder.slack est)

let test_estimator_sorted_is_zero () =
  (* Compaction may accrue slack (a potential over-estimate) even on
     sorted input, but the estimate itself must stay 0: it doubles as
     the ANALYZE time-ordered detector. *)
  let e, _ = estimate_with_slack (sorted 1000) in
  Alcotest.(check int) "estimate" 0 e;
  let e, s = estimate_with_slack ~capacity:1000 (sorted 1000) in
  Alcotest.(check int) "estimate uncompacted" 0 e;
  Alcotest.(check int) "slack uncompacted" 0 s;
  (* ... even under heavy compaction. *)
  let e, _ = estimate_with_slack ~capacity:2 (sorted 1000) in
  Alcotest.(check int) "estimate at capacity 2" 0 e

let test_estimator_detects_single_swap () =
  let a = swap (sorted 100) 10 60 in
  let e, _ = estimate_with_slack a in
  Alcotest.(check bool) "positive" true (e > 0);
  Alcotest.(check bool) "upper bound holds" true
    (e >= Korder.k_of ~compare:Int.compare a)

let test_estimator_relation () =
  let employed = Relation.Fixtures.employed () in
  Alcotest.(check bool) "employed estimate >= exact k (3)" true
    (Korder.estimate_relation employed >= 3);
  Alcotest.(check int) "sorted relation estimates 0" 0
    (Korder.estimate_relation (Relation.Trel.sort_by_time employed))

let test_estimator_rejects_tiny_capacity () =
  Alcotest.(check bool) "capacity 1 rejected" true
    (match Korder.estimator ~capacity:1 ~compare:Int.compare () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* A generator covering the estimator's interesting regimes: sorted,
   lightly and heavily perturbed, at sizes above and below the sketch
   capacity used in the bounded-memory property. *)
let perturbed_gen =
  QCheck2.Gen.(
    triple (int_range 1 40)
      (map (fun x -> float_of_int x /. 100.) (int_bound 14))
      (int_range 100 3000)
    |> map (fun (k, p, n) ->
           Perturb.k_ordered ~rand:(mk_rand (k + n)) ~k ~percentage:p
             (sorted n)))

(* The estimator never under-reports: its whole point is that a plan
   trusting [estimate] as a retroactive bound is always sound. *)
let prop_estimate_is_upper_bound =
  QCheck2.Test.make ~name:"estimate >= exact k (always)" ~count:100
    perturbed_gen (fun a ->
      let e, _ = estimate_with_slack ~capacity:64 a in
      e >= Korder.k_of ~compare:Int.compare a)

(* ... and it does not over-report past the documented factor: at most
   2k-1 plus whatever compaction slack the bounded sketch accrued. *)
let prop_estimate_within_documented_factor =
  QCheck2.Test.make ~name:"estimate <= 2k-1 + slack" ~count:100 perturbed_gen
    (fun a ->
      let e, s = estimate_with_slack ~capacity:64 a in
      let k = Korder.k_of ~compare:Int.compare a in
      e <= max 0 ((2 * k) - 1) + s)

(* With capacity >= n nothing is ever compacted: slack is 0 and the
   factor-2 bound is exact. *)
let prop_estimate_uncompacted =
  QCheck2.Test.make ~name:"slack 0 and factor 2 when capacity >= n"
    ~count:100 perturbed_gen (fun a ->
      let e, s = estimate_with_slack ~capacity:(Array.length a) a in
      let k = Korder.k_of ~compare:Int.compare a in
      s = 0 && e <= max 0 ((2 * k) - 1) && e >= k)

let prop_estimate_zero_iff_sorted =
  QCheck2.Test.make ~name:"estimate = 0 iff sorted" ~count:100
    QCheck2.Gen.(list_size (int_range 1 200) (int_bound 50))
    (fun l ->
      let a = Array.of_list l in
      let e, _ = estimate_with_slack ~capacity:16 a in
      let is_sorted =
        let ok = ref true in
        Array.iteri (fun i x -> if i > 0 && a.(i - 1) > x then ok := false) a;
        !ok
      in
      e = 0 = is_sorted)

(* Property: perturbation with target k never exceeds k, and measured
   percentage stays within tolerance of the target. *)
let prop_perturb_within_k =
  QCheck2.Test.make ~name:"k_ordered stays within k" ~count:100
    QCheck2.Gen.(
      triple (int_range 1 20)
        (map (fun x -> float_of_int x /. 100.) (int_bound 14))
        (int_range 100 2000))
    (fun (k, p, n) ->
      let out =
        Perturb.k_ordered ~rand:(mk_rand (k + n)) ~k ~percentage:p
          (sorted n)
      in
      Korder.k_of ~compare:Int.compare out <= k)

let prop_displacement_symmetry =
  (* Sum of signed displacements is zero, so sum of |d| is even. *)
  QCheck2.Test.make ~name:"total displacement is even" ~count:100
    QCheck2.Gen.(list_size (int_range 1 50) (int_bound 1000))
    (fun l ->
      let disp =
        Korder.displacements ~compare:Int.compare (Array.of_list l)
      in
      Array.fold_left ( + ) 0 disp mod 2 = 0)

let quick name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "ordering"
    [
      ( "korder",
        [
          quick "sorted is 0-ordered" test_sorted_is_zero_ordered;
          quick "single swap displacements" test_single_swap_displacements;
          quick "reversed array" test_reversed_array;
          quick "duplicates via stable order" test_duplicates_use_stable_order;
          quick "percentage of sorted" test_percentage_sorted_is_zero;
          quick "percentage rejects k<=0" test_percentage_rejects_bad_k;
          quick "percentage rejects insufficient k"
            test_percentage_rejects_insufficient_k;
          quick "percentage can reach 1" test_percentage_full_swap_pattern;
        ] );
      ( "table2",
        [
          quick "row 1: sorted" test_table2_sorted;
          quick "row 2: one swap 100 apart" test_table2_one_swap_100_apart;
          quick "row 3: 20 tuples 100 out" test_table2_twenty_tuples_100_out;
          quick "row 4: one tuple per displacement"
            test_table2_one_tuple_per_displacement;
          quick "row 5: ten tuples per displacement"
            test_table2_ten_tuples_per_displacement;
        ] );
      ( "perturb",
        [
          quick "shuffle is a permutation" test_shuffle_is_permutation;
          quick "shuffle copies" test_shuffle_leaves_input_untouched;
          quick "k_ordered hits exact k" test_k_ordered_exact_k;
          quick "k_ordered percentage close" test_k_ordered_percentage_close;
          quick "zero percentage is identity" test_k_ordered_zero_percentage;
          quick "k_ordered validates" test_k_ordered_validates;
          quick "realize exact profile" test_realize_displacements_exact_profile;
          quick "realize odd profile via 4-cycles"
            test_realize_displacements_odd_profile;
          quick "realize validates" test_realize_displacements_validates;
          quick "relation metrics" test_relation_metrics;
        ] );
      ( "estimator",
        [
          quick "sorted estimates 0" test_estimator_sorted_is_zero;
          quick "detects a single swap" test_estimator_detects_single_swap;
          quick "relation estimators" test_estimator_relation;
          quick "rejects capacity < 2" test_estimator_rejects_tiny_capacity;
        ] );
      ( "properties",
        List.map
          (QCheck_alcotest.to_alcotest ~long:false)
          [
            prop_perturb_within_k;
            prop_displacement_symmetry;
            prop_estimate_is_upper_bound;
            prop_estimate_within_documented_factor;
            prop_estimate_uncompacted;
            prop_estimate_zero_iff_sorted;
          ] );
    ]
