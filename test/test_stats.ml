(* The observe -> store -> decide loop: the statistics store and its
   summary, ANALYZE / SHOW STATS, write invalidation, the slow-query
   log, and — end to end — the optimizer flipping its plan because of
   what ANALYZE measured, without changing the answer. *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let check_contains what hay needle =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %S in %S" what needle hay)
    true (contains hay needle)

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

(* A relation whose tuples are exactly k-ordered: generated sorted, then
   perturbed tuple-wise (timestamps are distinct with overwhelming
   probability at these sizes, so tuple displacement = swap distance). *)
let perturbed_relation ~n ~k =
  let sorted =
    Relation.Trel.sort_by_time
      (Workload.Generate.relation (Workload.Spec.make ~n ~seed:3 ()))
  in
  let prng = Workload.Prng.create ~seed:11 in
  let tuples =
    Ordering.Perturb.k_ordered
      ~rand:(Workload.Prng.int_bounded prng)
      ~k ~percentage:0.05
      (Array.of_list (Relation.Trel.tuples sorted))
  in
  Relation.Trel.of_array (Relation.Trel.schema sorted) tuples

let outcome ?(cardinality = 100) ?(algorithm = "tree") ?(elapsed_ms = 1.)
    ?(peak_bytes = 0) ?k_observed ?segments ?(degradations = 0) () =
  {
    Obs.Stats.cardinality;
    algorithm;
    elapsed_ms;
    peak_bytes;
    k_observed;
    segments;
    degradations;
  }

(* ------------------------------------------------------------------ *)
(* Stats store unit behaviour                                          *)
(* ------------------------------------------------------------------ *)

let test_summary_sources () =
  let t = Obs.Stats.create () in
  Alcotest.(check string) "fresh" "none" (Obs.Stats.summary t).Obs.Stats.source;
  Obs.Stats.record t (outcome ~k_observed:5 ());
  Obs.Stats.record t (outcome ~k_observed:3 ~segments:42 ());
  Obs.Stats.record t (outcome ());
  let s = Obs.Stats.summary t in
  Alcotest.(check int) "observations" 3 s.Obs.Stats.observations;
  Alcotest.(check (option int)) "k_upper is the min" (Some 3)
    s.Obs.Stats.k_upper;
  Alcotest.(check string) "runtime source" "runtime" s.Obs.Stats.source;
  Alcotest.(check bool) "mean latency present" true
    (s.Obs.Stats.mean_eval_ms <> None)

let test_degraded_runs_prove_nothing () =
  let t = Obs.Stats.create () in
  Obs.Stats.record t (outcome ~k_observed:2 ~degradations:1 ());
  Alcotest.(check (option int)) "degraded k ignored" None
    (Obs.Stats.summary t).Obs.Stats.k_upper

let test_ring_is_bounded () =
  let t = Obs.Stats.create ~capacity:2 () in
  Obs.Stats.record t (outcome ~algorithm:"a" ());
  Obs.Stats.record t (outcome ~algorithm:"b" ());
  Obs.Stats.record t (outcome ~algorithm:"c" ());
  let names =
    List.map (fun o -> o.Obs.Stats.algorithm) (Obs.Stats.outcomes t)
  in
  Alcotest.(check (list string)) "newest two, newest first" [ "c"; "b" ] names;
  Alcotest.(check int) "observations count evictions too" 3
    (Obs.Stats.summary t).Obs.Stats.observations

let test_invalidate_keeps_latency () =
  let t = Obs.Stats.create () in
  Obs.Stats.record t (outcome ~k_observed:4 ());
  Obs.Stats.set_analysis t
    {
      Obs.Stats.an_cardinality = 100;
      an_k = 2;
      an_slack = 0;
      an_percentage = Some 0.01;
      an_time_ordered = false;
      an_distinct_endpoints = 180;
    };
  let s = Obs.Stats.summary t in
  Alcotest.(check (option int)) "analysis min-merges k" (Some 2)
    s.Obs.Stats.k_upper;
  Alcotest.(check string) "both sources" "analyze+runtime" s.Obs.Stats.source;
  Obs.Stats.invalidate t;
  let s = Obs.Stats.summary t in
  Alcotest.(check (option int)) "ordering claim dropped" None
    s.Obs.Stats.k_upper;
  Alcotest.(check bool) "analysis dropped" false s.Obs.Stats.analyzed;
  Alcotest.(check bool) "latency survives the write" true
    (s.Obs.Stats.mean_eval_ms <> None)

let test_store_case_folds () =
  let store = Obs.Stats.create_store () in
  Obs.Stats.record (Obs.Stats.store_get store "Employed") (outcome ());
  Alcotest.(check bool) "found under other case" true
    (Obs.Stats.store_find store "eMPLOYED" <> None);
  Alcotest.(check (list string)) "names" [ "employed" ]
    (Obs.Stats.store_names store);
  check_contains "printout names the relation"
    (Obs.Stats.store_to_string store)
    "employed";
  check_contains "empty printout says so"
    (Obs.Stats.store_to_string (Obs.Stats.create_store ()))
    "no statistics collected"

let test_distinct_sketch () =
  let s = Obs.Stats.Distinct.sketch () in
  for i = 1 to 10_000 do
    Obs.Stats.Distinct.add s i
  done;
  let est = float_of_int (Obs.Stats.Distinct.estimate s) in
  Alcotest.(check bool)
    (Printf.sprintf "10k distinct within 30%% (got %.0f)" est)
    true
    (est > 7_000. && est < 13_000.);
  let one = Obs.Stats.Distinct.sketch () in
  for _ = 1 to 1_000 do
    Obs.Stats.Distinct.add one 7
  done;
  Alcotest.(check int) "one distinct value" 1
    (Obs.Stats.Distinct.estimate one)

(* ------------------------------------------------------------------ *)
(* ANALYZE / SHOW STATS through the session                            *)
(* ------------------------------------------------------------------ *)

let exec s text =
  match Tsql.Session.exec s text with
  | Ok o -> o
  | Error e -> Alcotest.failf "%s failed: %s" text e

let ack s text =
  match exec s text with
  | Tsql.Session.Ack msg -> msg
  | Tsql.Session.Rows _ -> Alcotest.failf "%s: expected an Ack" text

let test_analyze_and_show_stats () =
  let catalog =
    Tsql.Catalog.add (Tsql.Catalog.create ()) "R" (perturbed_relation ~n:400 ~k:8)
  in
  let s = Tsql.Session.create catalog in
  let msg = ack s "ANALYZE R" in
  check_contains "ack" msg "analyzed R: 400 tuple(s)";
  check_contains "ack carries a bound" msg "k<=";
  check_contains "ack carries endpoints" msg "distinct endpoint(s)";
  let summary = Tsql.Catalog.stats_summary (Tsql.Session.catalog s) "r" in
  Alcotest.(check bool) "analyzed" true summary.Obs.Stats.analyzed;
  (match summary.Obs.Stats.k_upper with
  | Some k -> Alcotest.(check bool) (Printf.sprintf "8 <= k<=%d <= 15" k) true
        (k >= 8 && k <= 15)
  | None -> Alcotest.fail "no k bound after ANALYZE");
  check_contains "SHOW STATS prints the relation" (ack s "SHOW STATS") "r";
  (* Error cases: views and unknown names are not analyzable. *)
  ignore (ack s "CREATE VIEW V AS SELECT COUNT(Name) FROM R");
  (match Tsql.Session.exec s "ANALYZE V" with
  | Error e -> check_contains "view rejected" e "base relation"
  | Ok _ -> Alcotest.fail "ANALYZE on a view must fail");
  match Tsql.Session.exec s "ANALYZE Nope" with
  | Error e -> check_contains "unknown rejected" e "unknown relation"
  | Ok _ -> Alcotest.fail "ANALYZE on unknown must fail"

let test_analyze_detects_sorted () =
  let rel =
    Relation.Trel.sort_by_time
      (Workload.Generate.relation (Workload.Spec.make ~n:200 ~seed:4 ()))
  in
  let s =
    Tsql.Session.create (Tsql.Catalog.add (Tsql.Catalog.create ()) "R" rel)
  in
  check_contains "sorted reported" (ack s "ANALYZE R") "sorted by time";
  let summary = Tsql.Catalog.stats_summary (Tsql.Session.catalog s) "R" in
  Alcotest.(check (option bool)) "time_ordered" (Some true)
    summary.Obs.Stats.time_ordered

let test_writes_invalidate () =
  let s =
    Tsql.Session.create
      (Tsql.Catalog.add (Tsql.Catalog.create ()) "R"
         (perturbed_relation ~n:400 ~k:8))
  in
  ignore (ack s "ANALYZE R");
  let k_before =
    (Tsql.Catalog.stats_summary (Tsql.Session.catalog s) "R").Obs.Stats.k_upper
  in
  Alcotest.(check bool) "bound present" true (k_before <> None);
  ignore (ack s "INSERT INTO R VALUES ('Zed', 1) DURING [5,9]");
  let after =
    Tsql.Catalog.stats_summary (Tsql.Session.catalog s) "R"
  in
  Alcotest.(check (option int)) "insert drops the bound" None
    after.Obs.Stats.k_upper;
  Alcotest.(check bool) "analysis dropped too" false after.Obs.Stats.analyzed

let test_store_survives_catalog_rebuilds () =
  let s =
    Tsql.Session.create
      (Tsql.Catalog.add (Tsql.Catalog.create ()) "R"
         (perturbed_relation ~n:200 ~k:4))
  in
  ignore (exec s "SELECT COUNT(Name) FROM R");
  (* Each [Session.catalog] call materializes a fresh catalog; the store
     rides along by design. *)
  let c1 = Tsql.Session.catalog s and c2 = Tsql.Session.catalog s in
  Alcotest.(check bool) "first rebuild sees the outcome" true
    ((Tsql.Catalog.stats_summary c1 "R").Obs.Stats.observations > 0);
  Alcotest.(check int) "both rebuilds agree"
    (Tsql.Catalog.stats_summary c1 "R").Obs.Stats.observations
    (Tsql.Catalog.stats_summary c2 "R").Obs.Stats.observations

(* ------------------------------------------------------------------ *)
(* End to end: ANALYZE flips the plan, not the answer                  *)
(* ------------------------------------------------------------------ *)

let test_analyze_flips_the_plan () =
  let rel = perturbed_relation ~n:400 ~k:8 in
  let s =
    Tsql.Session.create (Tsql.Catalog.add (Tsql.Catalog.create ()) "R" rel)
  in
  (* MIN is not invertible, so the sweep fast path is out and the choice
     is between the aggregation tree and the k-ordered tree. *)
  let sql = "SELECT MIN(Salary) FROM R" in
  let explain catalog =
    match Tsql.Eval.explain catalog sql with
    | Ok text -> text
    | Error e -> Alcotest.failf "explain failed: %s" e
  in
  let before = explain (Tsql.Session.catalog s) in
  check_contains "before: declared metadata" before "stats: declared metadata";
  check_contains "before: aggregation tree" before "using aggregation-tree";
  ignore (ack s "ANALYZE R");
  let after = explain (Tsql.Session.catalog s) in
  check_contains "after: observed stats cited" after "stats: observed (analyze";
  check_contains "after: k-ordered tree" after "using ktree(";
  check_contains "after: rationale cites the observation" after "[stats: ";
  check_contains "after: observed k in the rationale" after "observed k<=";
  (* The flip is a plan change only: adaptive and non-adaptive answers
     are identical. *)
  let run ~adaptive =
    match Tsql.Eval.query ~adaptive (Tsql.Session.catalog s) sql with
    | Ok rel -> Tsql.Pretty.result_to_string rel
    | Error e -> Alcotest.failf "query failed: %s" e
  in
  Alcotest.(check string) "same timeline" (run ~adaptive:false)
    (run ~adaptive:true);
  (* EXPLAIN ANALYZE carries the provenance too. *)
  check_contains "profile stats line"
    (ack s ("EXPLAIN ANALYZE " ^ sql))
    "stats: observed (analyze"

let test_no_adaptive_session_ignores_stats () =
  let rel = perturbed_relation ~n:400 ~k:8 in
  let s =
    Tsql.Session.create ~adaptive:false
      (Tsql.Catalog.add (Tsql.Catalog.create ()) "R" rel)
  in
  ignore (ack s "ANALYZE R");
  check_contains "planner stays on declared metadata"
    (ack s "EXPLAIN ANALYZE SELECT MIN(Salary) FROM R")
    "stats: declared metadata"

(* ------------------------------------------------------------------ *)
(* Slow-query log                                                      *)
(* ------------------------------------------------------------------ *)

let test_slowlog_ring_and_worst () =
  let log = Obs.Slowlog.create ~capacity:2 ~threshold_ms:10. () in
  Alcotest.(check bool) "under threshold not kept" false
    (Obs.Slowlog.observe log ~kind:"select" ~statement:"fast" ~elapsed_ms:9.9
       ());
  ignore
    (Obs.Slowlog.observe log ~kind:"select" ~statement:"worst"
       ~elapsed_ms:500. ());
  ignore
    (Obs.Slowlog.observe log ~kind:"select" ~statement:"slow1"
       ~elapsed_ms:20. ());
  ignore
    (Obs.Slowlog.observe log ~kind:"insert" ~statement:"slow2"
       ~elapsed_ms:30. ~span_labels:[ "eval" ] ());
  Alcotest.(check int) "hits count evictions" 3 (Obs.Slowlog.hits log);
  Alcotest.(check (list string)) "ring keeps newest" [ "slow2"; "slow1" ]
    (List.map
       (fun e -> e.Obs.Slowlog.statement)
       (Obs.Slowlog.entries log));
  (match Obs.Slowlog.worst log with
  | Some w ->
      Alcotest.(check string) "worst survives eviction" "worst"
        w.Obs.Slowlog.statement
  | None -> Alcotest.fail "no worst entry");
  let json = Obs.Slowlog.to_json log in
  List.iter
    (check_contains "json" json)
    [
      "\"threshold_ms\": 10";
      "\"hits\": 3";
      "\"statement\": \"slow2\"";
      "\"spans\": [\"eval\"]";
      "\"profile\": null";
    ]

let test_serve_slowlog_capture () =
  let s = Tsql.Session.create (Tsql.Catalog.with_builtins ()) in
  let log = Obs.Slowlog.create ~threshold_ms:0. () in
  let buf = Buffer.create 256 in
  match
    Tsql.Serve.run_script
      ~out:(Buffer.add_string buf)
      ~slowlog:log s
      "SELECT COUNT(Name) FROM Employed;\n\
       INSERT INTO Employed VALUES ('Zoe', 60000) DURING [12,18];\n\
       SELECT MAX(Salary) FROM Employed;"
  with
  | Error e -> Alcotest.failf "serve failed: %s" e
  | Ok report ->
      Alcotest.(check int) "threshold 0 captures everything" 3
        (Obs.Slowlog.hits log);
      (* Slow SELECTs against base relations get re-profiled. *)
      let selects =
        List.filter
          (fun e -> e.Obs.Slowlog.kind = "select")
          (Obs.Slowlog.entries log)
      in
      Alcotest.(check int) "two selects" 2 (List.length selects);
      List.iter
        (fun e ->
          match e.Obs.Slowlog.detail with
          | Some text -> check_contains "profile attached" text "plan: "
          | None -> Alcotest.fail "select entry lost its profile")
        selects;
      let text = Tsql.Serve.report_to_string report in
      check_contains "report line" text "slowlog: 3 hit(s) at >= 0.0 ms";
      check_contains "report names the worst" text "worst:";
      check_contains "json round-trips" (Obs.Slowlog.to_json log)
        "\"profile\": \"query:"

let () =
  Alcotest.run "stats"
    [
      ( "store",
        [
          Alcotest.test_case "summary sources" `Quick test_summary_sources;
          Alcotest.test_case "degraded runs prove nothing" `Quick
            test_degraded_runs_prove_nothing;
          Alcotest.test_case "ring bounded" `Quick test_ring_is_bounded;
          Alcotest.test_case "invalidate keeps latency" `Quick
            test_invalidate_keeps_latency;
          Alcotest.test_case "store case-folds" `Quick test_store_case_folds;
          Alcotest.test_case "distinct sketch" `Quick test_distinct_sketch;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "ANALYZE + SHOW STATS" `Quick
            test_analyze_and_show_stats;
          Alcotest.test_case "detects sorted input" `Quick
            test_analyze_detects_sorted;
          Alcotest.test_case "writes invalidate" `Quick test_writes_invalidate;
          Alcotest.test_case "store survives catalog rebuilds" `Quick
            test_store_survives_catalog_rebuilds;
        ] );
      ( "feedback",
        [
          Alcotest.test_case "ANALYZE flips the plan, not the answer" `Quick
            test_analyze_flips_the_plan;
          Alcotest.test_case "--no-adaptive sessions ignore stats" `Quick
            test_no_adaptive_session_ignores_stats;
        ] );
      ( "slowlog",
        [
          Alcotest.test_case "ring, worst, json" `Quick
            test_slowlog_ring_and_worst;
          Alcotest.test_case "serve capture" `Quick test_serve_slowlog_capture;
        ] );
    ]
