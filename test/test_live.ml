(* Tests for the live subsystem: incremental materialized views with
   deletes (Live.View), the versioned snapshots they serve, the
   staleness-tracked query cache (Live.Cache), and the guarded live
   evaluation entry point (Live.Engine).

   The central property: for any random interleaving of inserts, deletes
   and queries, a live view's snapshot is Timeline.equivalent to a batch
   re-evaluation of the surviving tuples — for all five aggregates, at
   every intermediate version. *)

open Temporal

let c = Chronon.of_int
let iv = Interval.of_ints

let int_timeline =
  Alcotest.testable (Timeline.pp Format.pp_print_int) (Timeline.equal Int.equal)

(* ------------------------------------------------------------------ *)
(* View: unit tests                                                    *)
(* ------------------------------------------------------------------ *)

(* The paper's Employed relation as (interval, salary) writes. *)
let employed =
  [
    (iv 10 15, 1); (iv 7 21, 2); (iv 15 25, 3); (Interval.from (c 22), 4);
  ]

let batch monoid tuples =
  Tempagg.Engine.eval Tempagg.Engine.Sweep monoid (List.to_seq tuples)

let test_insert_matches_batch () =
  let view = Live.View.create Tempagg.Monoid.count in
  List.iter (fun (ivl, v) -> ignore (Live.View.insert view ivl v)) employed;
  Alcotest.(check bool)
    "count timeline" true
    (Timeline.equivalent Int.equal
       (Live.View.snapshot view)
       (batch Tempagg.Monoid.count employed))

let test_delete_subtracts () =
  let view = Live.View.create Tempagg.Monoid.sum_int in
  let handles =
    List.map (fun (ivl, v) -> Live.View.insert view ivl v) employed
  in
  (* Retire the second tuple; an invertible monoid subtracts in place. *)
  Alcotest.(check bool) "deleted" true
    (Live.View.delete view (List.nth handles 1));
  let survivors = [ List.nth employed 0; List.nth employed 2; List.nth employed 3 ] in
  Alcotest.(check bool)
    "sum after delete" true
    (Timeline.equivalent Int.equal
       (Live.View.snapshot view)
       (batch Tempagg.Monoid.sum_int survivors));
  Alcotest.(check int) "no rebuild" 0 (Live.View.stats view).Live.Stats.rebuilds

let test_delete_unknown_handle () =
  let view = Live.View.create Tempagg.Monoid.count in
  let h = Live.View.insert view (iv 0 5) () in
  Alcotest.(check bool) "first" true (Live.View.delete view h);
  Alcotest.(check bool) "second is idempotent" false (Live.View.delete view h);
  Alcotest.(check bool) "unknown" false (Live.View.delete view 999)

let test_min_delete_rebuilds_lazily () =
  let view = Live.View.create Tempagg.Monoid.min_int in
  let handles =
    List.map (fun (ivl, v) -> Live.View.insert view ivl v) employed
  in
  let before = (Live.View.stats view).Live.Stats.rebuilds in
  (* MIN has no inverse: the delete must tombstone, not subtract... *)
  ignore (Live.View.delete view (List.nth handles 0));
  let stats = Live.View.stats view in
  Alcotest.(check int) "deferred" before stats.Live.Stats.rebuilds;
  Alcotest.(check int) "tombstoned" 1 stats.Live.Stats.pending_tombstones;
  (* ...and the next read pays one batch rebuild over the survivors. *)
  let survivors = List.tl employed in
  Alcotest.(check bool)
    "min after rebuild" true
    (Timeline.equivalent (Option.equal Int.equal)
       (Live.View.snapshot view)
       (batch Tempagg.Monoid.min_int survivors));
  let stats = Live.View.stats view in
  Alcotest.(check int) "rebuilt once" (before + 1) stats.Live.Stats.rebuilds;
  Alcotest.(check int) "drained" 0 stats.Live.Stats.pending_tombstones

let test_load_equals_inserts () =
  let a = Live.View.create Tempagg.Monoid.count in
  let handles = Live.View.load a (List.to_seq employed) in
  Alcotest.(check int) "handles" (List.length employed) (List.length handles);
  let b = Live.View.create Tempagg.Monoid.count in
  List.iter (fun (ivl, v) -> ignore (Live.View.insert b ivl v)) employed;
  Alcotest.(check bool)
    "same timeline" true
    (Timeline.equivalent Int.equal (Live.View.snapshot a)
       (Live.View.snapshot b));
  (* Loaded handles are live: deleting one works as usual. *)
  Alcotest.(check bool) "deletable" true
    (Live.View.delete a (List.hd handles));
  Alcotest.(check int) "live tuples" 3 (Live.View.live_tuples a)

let test_snapshots_are_immutable () =
  let view = Live.View.create Tempagg.Monoid.count in
  ignore (Live.View.insert view (iv 0 9) ());
  let snap = Live.View.snapshot view in
  let copy = Timeline.of_list (Timeline.to_list snap) in
  ignore (Live.View.insert view (iv 5 14) ());
  ignore (Live.View.insert view (iv 2 3) ());
  Alcotest.check int_timeline "unchanged by later writes" copy snap

let test_version_and_history () =
  let view = Live.View.create ~history:8 Tempagg.Monoid.count in
  Alcotest.(check int) "fresh" 0 (Live.View.version view);
  let expected = ref [] in
  List.iter
    (fun (ivl, v) ->
      ignore (Live.View.insert view ivl v);
      expected := (Live.View.version view, Live.View.snapshot view) :: !expected)
    employed;
  (* Every retained version still reads exactly as it did when current. *)
  List.iter
    (fun (version, timeline) ->
      match Live.View.snapshot_at view version with
      | None -> Alcotest.failf "version %d evicted" version
      | Some t -> Alcotest.check int_timeline "history" timeline t)
    !expected;
  Alcotest.(check bool)
    "unknown version" true
    (Option.is_none (Live.View.snapshot_at view 999))

let test_history_truncates () =
  let view = Live.View.create ~history:2 Tempagg.Monoid.count in
  for i = 0 to 5 do
    ignore (Live.View.insert view (iv i (i + 1)) ())
  done;
  Alcotest.(check bool)
    "old version gone" true
    (Option.is_none (Live.View.snapshot_at view 1));
  Alcotest.(check bool)
    "current retained" true
    (Option.is_some (Live.View.snapshot_at view (Live.View.version view)))

let test_point_and_range () =
  let view = Live.View.create Tempagg.Monoid.count in
  List.iter (fun (ivl, v) -> ignore (Live.View.insert view ivl v)) employed;
  Alcotest.(check (option int)) "point" (Some 2)
    (Live.View.value_at view (c 10));
  Alcotest.(check (option int)) "empty prefix" (Some 0)
    (Live.View.value_at view (c 0));
  (match Live.View.range view (iv 10 15) with
  | None -> Alcotest.fail "range inside the domain"
  | Some t ->
      Alcotest.check int_timeline "range"
        (Timeline.of_list [ (iv 10 14, 2); (iv 15 15, 3) ])
        t);
  Alcotest.(check bool)
    "range is clipped" true
    (match Live.View.range view (iv 10 15) with
    | Some t -> Interval.equal (Timeline.cover t) (iv 10 15)
    | None -> false)

let test_domain_clips_inserts () =
  let view =
    Live.View.create ~origin:(c 10) ~horizon:(c 20) Tempagg.Monoid.count
  in
  ignore (Live.View.insert view (iv 0 12) ());
  ignore (Live.View.insert view (iv 30 40) ());
  Alcotest.(check int) "outside tuple contributes nothing" 1
    (Live.View.live_tuples view);
  Alcotest.(check (option int)) "clipped in" (Some 1)
    (Live.View.value_at view (c 11));
  Alcotest.(check (option int)) "clipped out" (Some 0)
    (Live.View.value_at view (c 15))

let test_instrument_tracks_segments () =
  let instrument = Tempagg.Instrument.create () in
  let view = Live.View.create ~instrument Tempagg.Monoid.count in
  List.iter (fun (ivl, v) -> ignore (Live.View.insert view ivl v)) employed;
  Alcotest.(check int) "live nodes = segments" (Live.View.segments view)
    (Tempagg.Instrument.live instrument);
  ignore (Live.View.delete view 0);
  Alcotest.(check int) "after delete" (Live.View.segments view)
    (Tempagg.Instrument.live instrument)

let test_create_validates () =
  Alcotest.(check bool)
    "origin > horizon" true
    (match Live.View.create ~origin:(c 5) ~horizon:(c 1) Tempagg.Monoid.count with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool)
    "negative history" true
    (match Live.View.create ~history:(-1) Tempagg.Monoid.count with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* View: the live-vs-batch equivalence property                        *)
(* ------------------------------------------------------------------ *)

(* A trace op over a small domain: inserts carry (start, length, value);
   deletes pick among the live handles by index; queries force a
   snapshot mid-trace (exercising rebuild timing for min/max). *)
type trace_op =
  | T_insert of int * int * int
  | T_delete of int
  | T_query of int

let print_trace ops =
  String.concat "; "
    (List.map
       (function
         | T_insert (s, l, v) -> Printf.sprintf "ins[%d,%d]=%d" s (s + l) v
         | T_delete i -> Printf.sprintf "del#%d" i
         | T_query t -> Printf.sprintf "q@%d" t)
       ops)

let gen_trace =
  QCheck2.Gen.(
    let op =
      frequency
        [
          ( 5,
            let* s = int_bound 50 in
            let* l = int_bound 20 in
            let* v = int_range 1 100 in
            return (T_insert (s, l, v)) );
          (3, map (fun i -> T_delete i) (int_bound 30));
          (2, map (fun t -> T_query t) (int_bound 70));
        ]
    in
    list_size (int_range 1 30) op)

(* Replays the trace against one view, checking the snapshot against a
   batch Sweep evaluation of the surviving tuples after every op. *)
let check_live_vs_batch (type s r) (monoid : (int, s, r) Tempagg.Monoid.t)
    equal_r ops =
  let view = Live.View.create ~history:64 monoid in
  let live : (Live.View.handle * (Interval.t * int)) list ref = ref [] in
  let versions = ref [] in
  let step op =
    (match op with
    | T_insert (s, l, v) ->
        let ivl = iv s (s + l) in
        let h = Live.View.insert view ivl v in
        live := (h, (ivl, v)) :: !live
    | T_delete i -> (
        match !live with
        | [] -> ()
        | alive ->
            let h, _ = List.nth alive (i mod List.length alive) in
            assert (Live.View.delete view h);
            live := List.remove_assoc h alive)
    | T_query t ->
        let expected =
          Timeline.value_at
            (batch monoid (List.map snd !live))
            (c t)
        in
        if Live.View.value_at view (c t) <> expected then
          Alcotest.failf "point query diverged at %d" t);
    let reference = batch monoid (List.map snd !live) in
    versions := (Live.View.version view, reference) :: !versions;
    Timeline.equivalent equal_r (Live.View.snapshot view) reference
  in
  List.for_all step ops
  (* And every retained intermediate version still matches the batch
     result computed when it was current. *)
  && List.for_all
       (fun (version, reference) ->
         match Live.View.snapshot_at view version with
         | None -> true (* evicted: nothing to check *)
         | Some t -> Timeline.equivalent equal_r t reference)
       !versions

let prop_live_equals_batch =
  QCheck2.Test.make ~count:200 ~print:print_trace
    ~name:"live view = batch re-evaluation (5 aggregates, every version)"
    gen_trace
    (fun ops ->
      check_live_vs_batch Tempagg.Monoid.count Int.equal ops
      && check_live_vs_batch Tempagg.Monoid.sum_int Int.equal ops
      && check_live_vs_batch Tempagg.Monoid.avg_int
           (Option.equal Float.equal) ops
      && check_live_vs_batch Tempagg.Monoid.min_int (Option.equal Int.equal)
           ops
      && check_live_vs_batch Tempagg.Monoid.max_int (Option.equal Int.equal)
           ops)

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let test_cache_hit_miss () =
  let stats = Live.Stats.create () in
  let cache = Live.Cache.create stats in
  Alcotest.(check (option int)) "miss" None (Live.Cache.find cache "k");
  Live.Cache.add cache ~key:"k" ~scope:"emp" ~interval:(iv 0 9) ~version:1 42;
  Alcotest.(check (option int)) "hit" (Some 42) (Live.Cache.find cache "k");
  Alcotest.(check int) "hits" 1 stats.Live.Stats.cache_hits;
  Alcotest.(check int) "misses" 1 stats.Live.Stats.cache_misses;
  Alcotest.(check (option int)) "version" (Some 1)
    (Live.Cache.entry_version cache "k")

let test_cache_precise_invalidation () =
  let stats = Live.Stats.create () in
  let cache = Live.Cache.create stats in
  Live.Cache.add cache ~key:"a" ~scope:"emp" ~interval:(iv 0 9) ~version:1 1;
  Live.Cache.add cache ~key:"b" ~scope:"emp" ~interval:(iv 20 29) ~version:1 2;
  Live.Cache.add cache ~key:"c" ~scope:"dept" ~interval:(iv 0 9) ~version:1 3;
  (* A write to emp over [5,7] touches only the overlapping emp entry. *)
  Alcotest.(check int) "dropped" 1
    (Live.Cache.invalidate cache ~scope:"emp" ~interval:(iv 5 7));
  Alcotest.(check (option int)) "overlapping gone" None
    (Live.Cache.find cache "a");
  Alcotest.(check (option int)) "disjoint interval kept" (Some 2)
    (Live.Cache.find cache "b");
  Alcotest.(check (option int)) "other scope kept" (Some 3)
    (Live.Cache.find cache "c");
  Alcotest.(check int) "counted" 1 stats.Live.Stats.cache_invalidations

let test_cache_eviction () =
  let stats = Live.Stats.create () in
  let cache = Live.Cache.create ~capacity:2 stats in
  Live.Cache.add cache ~key:"a" ~scope:"s" ~interval:(iv 0 1) ~version:1 1;
  Live.Cache.add cache ~key:"b" ~scope:"s" ~interval:(iv 0 1) ~version:1 2;
  Live.Cache.add cache ~key:"c" ~scope:"s" ~interval:(iv 0 1) ~version:1 3;
  Alcotest.(check int) "bounded" 2 (Live.Cache.length cache);
  Alcotest.(check int) "evicted" 1 stats.Live.Stats.cache_evictions;
  Alcotest.(check (option int)) "oldest out" None (Live.Cache.find cache "a");
  Alcotest.(check (option int)) "newest in" (Some 3) (Live.Cache.find cache "c")

let test_cache_replace_same_key () =
  let cache = Live.Cache.create ~capacity:2 (Live.Stats.create ()) in
  Live.Cache.add cache ~key:"a" ~scope:"s" ~interval:(iv 0 1) ~version:1 1;
  Live.Cache.add cache ~key:"a" ~scope:"s" ~interval:(iv 0 1) ~version:2 9;
  Alcotest.(check int) "no duplicate" 1 (Live.Cache.length cache);
  Alcotest.(check (option int)) "updated" (Some 9) (Live.Cache.find cache "a");
  Alcotest.(check (option int)) "new version" (Some 2)
    (Live.Cache.entry_version cache "a")

let test_cache_clear () =
  let stats = Live.Stats.create () in
  let cache = Live.Cache.create stats in
  Live.Cache.add cache ~key:"a" ~scope:"s" ~interval:(iv 0 1) ~version:1 1;
  Live.Cache.add cache ~key:"b" ~scope:"s" ~interval:(iv 0 1) ~version:1 2;
  Alcotest.(check int) "clear counts entries" 2 (Live.Cache.clear cache);
  Alcotest.(check int) "empty" 0 (Live.Cache.length cache);
  Alcotest.(check (option int)) "gone" None (Live.Cache.find cache "a")

let test_cache_validates_capacity () =
  Alcotest.(check bool)
    "capacity must be positive" true
    (match Live.Cache.create ~capacity:0 (Live.Stats.create ()) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Live.Engine: guarded incremental evaluation                         *)
(* ------------------------------------------------------------------ *)

let test_eval_live_matches_sweep () =
  let data = List.to_seq employed in
  match Live.Engine.eval_live Tempagg.Monoid.count data with
  | Error e -> Alcotest.failf "unexpected %s" (Tempagg.Engine.error_to_string e)
  | Ok t ->
      Alcotest.(check bool)
        "same as batch" true
        (Timeline.equivalent Int.equal t (batch Tempagg.Monoid.count employed))

let test_eval_live_budget () =
  (* Gaps between the tuples keep the segments from coalescing, so the
     materialized state actually grows past the budget. *)
  let data =
    Seq.init 2_000 (fun i -> (iv (3 * i) ((3 * i) + 1), ()))
  in
  match Live.Engine.eval_live ~memory_budget:256 Tempagg.Monoid.count data with
  | Error (Tempagg.Engine.Budget_exhausted _) -> ()
  | Error e -> Alcotest.failf "wrong error %s" (Tempagg.Engine.error_to_string e)
  | Ok _ -> Alcotest.fail "expected the budget to trip"

let test_eval_live_deadline () =
  let data =
    Seq.init 100_000 (fun i ->
        (* A little work per element so the deadline check can fire. *)
        let s = 3 * (i mod 10_000) in
        (iv s (s + 1), ()))
  in
  match
    Live.Engine.eval_live ~deadline_ms:0.000_001 Tempagg.Monoid.count data
  with
  | Error (Tempagg.Engine.Deadline_exhausted _) -> ()
  | Error e -> Alcotest.failf "wrong error %s" (Tempagg.Engine.error_to_string e)
  | Ok _ -> Alcotest.fail "expected the deadline to trip"

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_stats_to_string_and_reset () =
  let stats = Live.Stats.create () in
  stats.Live.Stats.inserts <- 3;
  stats.Live.Stats.cache_hits <- 2;
  let s = Live.Stats.to_string stats in
  Alcotest.(check bool) "mentions inserts" true (contains_sub s "inserts=3");
  Alcotest.(check bool) "mentions hits" true (contains_sub s "hits=2");
  Live.Stats.reset stats;
  Alcotest.(check int) "reset" 0 stats.Live.Stats.inserts

let quick name f = Alcotest.test_case name `Quick f
let qtest = QCheck_alcotest.to_alcotest ~long:false

let () =
  Alcotest.run "live"
    [
      ( "view",
        [
          quick "insert matches batch" test_insert_matches_batch;
          quick "delete subtracts (invertible)" test_delete_subtracts;
          quick "delete unknown handle" test_delete_unknown_handle;
          quick "min delete rebuilds lazily" test_min_delete_rebuilds_lazily;
          quick "load = inserts" test_load_equals_inserts;
          quick "snapshots immutable" test_snapshots_are_immutable;
          quick "versions and history" test_version_and_history;
          quick "history truncates" test_history_truncates;
          quick "point and range reads" test_point_and_range;
          quick "domain clips inserts" test_domain_clips_inserts;
          quick "instrument tracks segments" test_instrument_tracks_segments;
          quick "create validates" test_create_validates;
        ] );
      ("equivalence", [ qtest prop_live_equals_batch ]);
      ( "cache",
        [
          quick "hit and miss" test_cache_hit_miss;
          quick "precise invalidation" test_cache_precise_invalidation;
          quick "eviction" test_cache_eviction;
          quick "replace same key" test_cache_replace_same_key;
          quick "clear" test_cache_clear;
          quick "validates capacity" test_cache_validates_capacity;
        ] );
      ( "engine",
        [
          quick "eval_live = sweep" test_eval_live_matches_sweep;
          quick "memory budget" test_eval_live_budget;
          quick "deadline" test_eval_live_deadline;
        ] );
      ("stats", [ quick "to_string and reset" test_stats_to_string_and_reset ]);
    ]
