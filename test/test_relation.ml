(* Tests for the relation layer: values, schemas, tuples, valid-time
   relations and CSV round-trips. *)

open Temporal
open Relation

let c = Chronon.of_int
let iv = Interval.of_ints

let value = Alcotest.testable Value.pp Value.equal

(* ------------------------------------------------------------------ *)
(* Value                                                               *)
(* ------------------------------------------------------------------ *)

let test_value_types () =
  Alcotest.(check (option string)) "int" (Some "int")
    (Option.map Value.ty_to_string (Value.type_of (Value.Int 3)));
  Alcotest.(check (option string)) "null" None
    (Option.map Value.ty_to_string (Value.type_of Value.Null))

let test_value_ty_roundtrip () =
  List.iter
    (fun ty ->
      Alcotest.(check bool) "roundtrip" true
        (Value.ty_of_string (Value.ty_to_string ty) = Some ty))
    [ Value.Tint; Value.Tfloat; Value.Tstring ];
  Alcotest.(check bool) "unknown" true (Value.ty_of_string "blob" = None)

let test_value_compare_numeric () =
  Alcotest.(check bool) "int<int" true (Value.compare (Value.Int 1) (Value.Int 2) < 0);
  Alcotest.(check int) "int=float" 0
    (Value.compare (Value.Int 2) (Value.Float 2.));
  Alcotest.(check bool) "null smallest" true
    (Value.compare Value.Null (Value.Int (-100)) < 0);
  Alcotest.(check bool) "string largest" true
    (Value.compare (Value.Str "a") (Value.Int 5) > 0)

let test_value_coercions () =
  Alcotest.(check (option int)) "to_int" (Some 3) (Value.to_int (Value.Int 3));
  Alcotest.(check (option int)) "float not int" None
    (Value.to_int (Value.Float 3.));
  Alcotest.(check bool) "int to float" true
    (Value.to_float (Value.Int 3) = Some 3.)

let test_value_of_string () =
  Alcotest.(check (result value string)) "int" (Ok (Value.Int 42))
    (Value.of_string Value.Tint "42");
  Alcotest.(check (result value string)) "empty is null" (Ok Value.Null)
    (Value.of_string Value.Tint "");
  Alcotest.(check bool) "bad int" true
    (Result.is_error (Value.of_string Value.Tint "4x"));
  Alcotest.(check (result value string)) "string" (Ok (Value.Str "hi"))
    (Value.of_string Value.Tstring "hi")

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)
(* ------------------------------------------------------------------ *)

let sample_schema =
  Schema.of_pairs [ ("name", Value.Tstring); ("salary", Value.Tint) ]

let test_schema_basic () =
  Alcotest.(check int) "arity" 2 (Schema.arity sample_schema);
  Alcotest.(check (option int)) "index" (Some 1)
    (Schema.index_of sample_schema "salary");
  Alcotest.(check (option int)) "missing" None
    (Schema.index_of sample_schema "dept");
  Alcotest.(check bool) "mem" true (Schema.mem sample_schema "name");
  Alcotest.(check bool) "ty" true
    (Schema.ty_of sample_schema "salary" = Some Value.Tint)

let test_schema_rejects_duplicates () =
  Alcotest.check_raises "dup" (Invalid_argument "Schema.make: duplicate column \"a\"")
    (fun () ->
      ignore (Schema.of_pairs [ ("a", Value.Tint); ("a", Value.Tint) ]))

let test_schema_rejects_empty_name () =
  Alcotest.check_raises "empty" (Invalid_argument "Schema.make: empty column name")
    (fun () -> ignore (Schema.of_pairs [ ("", Value.Tint) ]))

let test_schema_equal () =
  let s2 = Schema.of_pairs [ ("name", Value.Tstring); ("salary", Value.Tint) ] in
  let s3 = Schema.of_pairs [ ("salary", Value.Tint); ("name", Value.Tstring) ] in
  Alcotest.(check bool) "equal" true (Schema.equal sample_schema s2);
  Alcotest.(check bool) "order matters" false (Schema.equal sample_schema s3)

(* ------------------------------------------------------------------ *)
(* Tuple                                                               *)
(* ------------------------------------------------------------------ *)

let t1 = Tuple.make [| Value.Str "a"; Value.Int 1 |] (iv 5 10)

let test_tuple_accessors () =
  Alcotest.check value "value" (Value.Int 1) (Tuple.value t1 1);
  Alcotest.(check bool) "valid" true (Interval.equal (Tuple.valid t1) (iv 5 10));
  Alcotest.(check bool) "start" true (Chronon.equal (Tuple.start t1) (c 5))

let test_tuple_out_of_range () =
  Alcotest.check_raises "index"
    (Invalid_argument "Tuple.value: column index out of range") (fun () ->
      ignore (Tuple.value t1 2))

let test_tuple_time_order () =
  let t2 = Tuple.make [| Value.Str "b"; Value.Int 2 |] (iv 5 12) in
  let t3 = Tuple.make [| Value.Str "c"; Value.Int 3 |] (iv 4 20) in
  Alcotest.(check bool) "stop ties" true (Tuple.compare_by_time t1 t2 < 0);
  Alcotest.(check bool) "start first" true (Tuple.compare_by_time t3 t1 < 0)

let test_tuple_with_valid () =
  let t = Tuple.with_valid t1 (iv 0 1) in
  Alcotest.(check bool) "updated" true (Interval.equal (Tuple.valid t) (iv 0 1));
  Alcotest.check value "values preserved" (Value.Str "a") (Tuple.value t 0)

(* ------------------------------------------------------------------ *)
(* Trel                                                                *)
(* ------------------------------------------------------------------ *)

let employed = Fixtures.employed ()

let test_trel_cardinality () =
  Alcotest.(check int) "4 tuples" 4 (Trel.cardinality employed)

let test_trel_type_checking () =
  Alcotest.check_raises "wrong type"
    (Invalid_argument "Trel: column salary expects int, got string") (fun () ->
      ignore
        (Trel.create sample_schema
           [ Tuple.make [| Value.Str "a"; Value.Str "oops" |] (iv 0 1) ]))

let test_trel_arity_checking () =
  Alcotest.check_raises "arity"
    (Invalid_argument "Trel: tuple arity 1, schema arity 2") (fun () ->
      ignore
        (Trel.create sample_schema [ Tuple.make [| Value.Str "a" |] (iv 0 1) ]))

let test_trel_null_any_column () =
  let rel =
    Trel.create sample_schema
      [ Tuple.make [| Value.Null; Value.Null |] (iv 0 1) ]
  in
  Alcotest.(check int) "accepted" 1 (Trel.cardinality rel)

let test_trel_sort_by_time () =
  let sorted = Trel.sort_by_time employed in
  Alcotest.(check bool) "unsorted input" false (Trel.is_time_ordered employed);
  Alcotest.(check bool) "sorted output" true (Trel.is_time_ordered sorted);
  Alcotest.(check int) "same cardinality" 4 (Trel.cardinality sorted);
  Alcotest.(check bool) "first is Nathan [7,12]" true
    (Chronon.equal (Tuple.start (Trel.get sorted 0)) (c 7))

let test_trel_lifespan () =
  match Trel.lifespan employed with
  | None -> Alcotest.fail "expected lifespan"
  | Some span ->
      Alcotest.(check bool) "hull" true
        (Interval.equal span (Interval.from (c 7)))

let test_trel_empty_lifespan () =
  let rel = Trel.create sample_schema [] in
  Alcotest.(check bool) "none" true (Trel.lifespan rel = None)

let test_trel_filter () =
  let nathans =
    Trel.filter
      (fun t -> Value.equal (Tuple.value t 0) (Value.Str "Nathan"))
      employed
  in
  Alcotest.(check int) "two Nathans" 2 (Trel.cardinality nathans)

let test_trel_append () =
  let both = Trel.append employed employed in
  Alcotest.(check int) "doubled" 8 (Trel.cardinality both)

let test_trel_append_schema_mismatch () =
  let other = Trel.create (Schema.of_pairs [ ("x", Value.Tint) ]) [] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Trel.append: schemas differ")
    (fun () -> ignore (Trel.append employed other))

let test_trel_agg_input () =
  let salaries = List.of_seq (Trel.agg_input employed ~column:"salary") in
  Alcotest.(check int) "4 pairs" 4 (List.length salaries);
  Alcotest.(check bool) "first salary" true
    (Value.equal (snd (List.hd salaries)) (Value.Int 40_000))

let test_trel_agg_input_missing_column () =
  Alcotest.check_raises "missing"
    (Invalid_argument "Trel.agg_input: no column \"dept\"") (fun () ->
      let (_ : _ Seq.t) = Trel.agg_input employed ~column:"dept" in
      ())

(* ------------------------------------------------------------------ *)
(* CSV                                                                 *)
(* ------------------------------------------------------------------ *)

let test_csv_roundtrip () =
  let text = Csv_io.to_string employed in
  match Csv_io.of_string text with
  | Error msg -> Alcotest.fail msg
  | Ok rel ->
      Alcotest.(check int) "cardinality" 4 (Trel.cardinality rel);
      Alcotest.(check bool) "schema" true
        (Schema.equal (Trel.schema rel) (Trel.schema employed));
      List.iter2
        (fun a b -> Alcotest.(check bool) "tuple" true (Tuple.equal a b))
        (Trel.tuples employed) (Trel.tuples rel)

let test_csv_infinite_stop () =
  let text = Csv_io.to_string employed in
  let lines = String.split_on_char '\n' text in
  Alcotest.(check bool) "oo serialized" true
    (List.exists
       (fun l ->
         String.length l > 2 && String.sub l (String.length l - 2) 2 = "oo")
       lines)

let test_csv_quoting () =
  let schema = Schema.of_pairs [ ("note", Value.Tstring) ] in
  let rel =
    Trel.create schema
      [ Tuple.make [| Value.Str "a,b \"quoted\"\nline" |] (iv 0 1) ]
  in
  match Csv_io.of_string (Csv_io.to_string rel) with
  | Error msg -> Alcotest.fail msg
  | Ok rel' ->
      Alcotest.check value "field preserved"
        (Value.Str "a,b \"quoted\"\nline")
        (Tuple.value (Trel.get rel' 0) 0)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let expect_error text fragment =
  match Csv_io.of_string text with
  | Ok _ -> Alcotest.fail ("expected parse error for " ^ String.escaped text)
  | Error msg ->
      if not (contains msg fragment) then
        Alcotest.fail (Printf.sprintf "error %S lacks %S" msg fragment)

let test_csv_errors () =
  expect_error "" "empty";
  expect_error "name,start,stop\n" "missing type";
  expect_error "name:blob,start,stop\n" "unknown type";
  expect_error "name:string\n" "missing start,stop";
  expect_error "name:string,start,stop\nalice,5\n" "expected 3 fields";
  expect_error "name:string,start,stop\nalice,5,x\n" "bad timestamp";
  expect_error "name:string,start,stop\nalice,-5,7\n" "negative timestamp";
  expect_error "name:string,start,stop\nalice,9,7\n" "start 9 after stop 7";
  expect_error "salary:int,start,stop\nabc,5,7\n" "not an int literal"

(* Every parse error names its physical line; data-row errors also name
   the row, and the two diverge across quoted newlines. *)
let test_csv_error_positions () =
  expect_error "name:string,start,stop\n\"alice,1,2\n" "line 2";
  expect_error "name:string,start,stop\nalice,1,2\nbob,5\n" "line 3 (row 2)";
  (* Row 1 spans lines 2-3 via a quoted newline, so the bad row 2 sits on
     physical line 4. *)
  expect_error "name:string,start,stop\n\"a\nb\",1,2\nbob,bad,2\n"
    "line 4 (row 2)";
  expect_error "name:blob,start,stop\nalice,1,2\n" "line 1"

let test_csv_file_io () =
  let path = Filename.temp_file "tempagg" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv_io.save path employed;
      match Csv_io.load path with
      | Error msg -> Alcotest.fail msg
      | Ok rel -> Alcotest.(check int) "loaded" 4 (Trel.cardinality rel))

let () =
  Alcotest.run "relation"
    [
      ( "value",
        [
          Alcotest.test_case "types" `Quick test_value_types;
          Alcotest.test_case "type-name roundtrip" `Quick test_value_ty_roundtrip;
          Alcotest.test_case "numeric comparison" `Quick
            test_value_compare_numeric;
          Alcotest.test_case "coercions" `Quick test_value_coercions;
          Alcotest.test_case "of_string" `Quick test_value_of_string;
        ] );
      ( "schema",
        [
          Alcotest.test_case "basic accessors" `Quick test_schema_basic;
          Alcotest.test_case "rejects duplicate columns" `Quick
            test_schema_rejects_duplicates;
          Alcotest.test_case "rejects empty names" `Quick
            test_schema_rejects_empty_name;
          Alcotest.test_case "equality" `Quick test_schema_equal;
        ] );
      ( "tuple",
        [
          Alcotest.test_case "accessors" `Quick test_tuple_accessors;
          Alcotest.test_case "index out of range" `Quick test_tuple_out_of_range;
          Alcotest.test_case "time order" `Quick test_tuple_time_order;
          Alcotest.test_case "with_valid" `Quick test_tuple_with_valid;
        ] );
      ( "trel",
        [
          Alcotest.test_case "cardinality" `Quick test_trel_cardinality;
          Alcotest.test_case "type checking" `Quick test_trel_type_checking;
          Alcotest.test_case "arity checking" `Quick test_trel_arity_checking;
          Alcotest.test_case "null allowed anywhere" `Quick
            test_trel_null_any_column;
          Alcotest.test_case "sort by time" `Quick test_trel_sort_by_time;
          Alcotest.test_case "lifespan" `Quick test_trel_lifespan;
          Alcotest.test_case "empty lifespan" `Quick test_trel_empty_lifespan;
          Alcotest.test_case "filter" `Quick test_trel_filter;
          Alcotest.test_case "append" `Quick test_trel_append;
          Alcotest.test_case "append schema mismatch" `Quick
            test_trel_append_schema_mismatch;
          Alcotest.test_case "agg_input" `Quick test_trel_agg_input;
          Alcotest.test_case "agg_input missing column" `Quick
            test_trel_agg_input_missing_column;
        ] );
      ( "csv",
        [
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "infinite stop serialized" `Quick
            test_csv_infinite_stop;
          Alcotest.test_case "quoting" `Quick test_csv_quoting;
          Alcotest.test_case "parse errors" `Quick test_csv_errors;
          Alcotest.test_case "error positions" `Quick
            test_csv_error_positions;
          Alcotest.test_case "file io" `Quick test_csv_file_io;
        ] );
    ]
